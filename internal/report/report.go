// Package report defines the machine-readable result schema shared by the
// cmd/ tools: cmd/nearclique -json emits a Run per invocation and
// cmd/bench emits a list of Measurements. Both embed the same Cost block,
// so downstream tooling parses execution costs identically regardless of
// which tool produced them.
package report

import (
	"time"

	"nearclique/internal/core"
	"nearclique/internal/flight"
	"nearclique/internal/graph"
	"nearclique/internal/shadow"
)

// Cost is the execution-cost block shared by every emitted record.
// Simulator counters are zero for sequential runs (nothing is simulated).
type Cost struct {
	Rounds       int   `json:"rounds"`
	Frames       int   `json:"frames"`
	PayloadBytes int   `json:"payload_bytes"`
	WallNS       int64 `json:"wall_ns"`
}

// Candidate is one reported near-clique.
type Candidate struct {
	Label   int64   `json:"label"`
	Version int     `json:"version"`
	Size    int     `json:"size"`
	Density float64 `json:"density"`
	Members []int   `json:"members,omitempty"`
}

// RefinedCandidate is the refinement post-pass counterpart of one
// Candidate: the polished set plus the base shape it started from, so
// base-vs-refined quality reads off one record.
type RefinedCandidate struct {
	Label       int64   `json:"label"`
	Size        int     `json:"size"`
	Density     float64 `json:"density"`
	BaseSize    int     `json:"base_size"`
	BaseDensity float64 `json:"base_density"`
	SeedVertex  int     `json:"seed_vertex"`
	Moves       int     `json:"moves"`
	Improved    bool    `json:"improved"`
	Members     []int   `json:"members,omitempty"`
}

// Run is the record one solve over one graph emits: cmd/nearclique -json
// prints it and cmd/nearcliqued serves it from /v1/solve and /v1/batch.
// Error carries the failure while the rest of the record still reports
// whatever partial costs accumulated (e.g. a canceled run's rounds).
// GraphDigest is the stable content digest of the input
// (graph.Graph.Digest — the `.ncsr` snapshot checksum), so every result
// is attributable to an exact input. The record deliberately carries no
// cache marker: the daemon's result cache returns byte-identical bodies
// on hit and miss, and signals hits out-of-band (the X-Nearclique-Cache
// header and the ServerStats/GraphStats counters below).
type Run struct {
	Engine      string `json:"engine"`
	GraphDigest string `json:"graph_digest,omitempty"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	Cost
	MaxFrameBits int         `json:"max_frame_bits,omitempty"`
	SampleSizes  []int       `json:"sample_sizes,omitempty"`
	MaxComponent int         `json:"max_component,omitempty"`
	Candidates   []Candidate `json:"candidates"`
	// Refinement post-pass fields, present only when the run refined:
	// Refine is the canonical spec, RefinedSize/RefinedDensity the best
	// refined candidate, RefineMoves the total local-search moves, and
	// Refined the per-candidate records aligned with Candidates.
	Refine         string             `json:"refine,omitempty"`
	RefinedSize    int                `json:"refined_size,omitempty"`
	RefinedDensity float64            `json:"refined_density,omitempty"`
	RefineMoves    int                `json:"refine_moves,omitempty"`
	Refined        []RefinedCandidate `json:"refined,omitempty"`
	// Flight is the run's flight-recorder sample: the trailing window of
	// per-round/per-phase events, present only when the caller attached a
	// recorder and asked for it (cmd/nearclique -trace; the server's
	// opt-in flight request parameter). The cost numbers above stay the
	// source of truth — Flight is the per-round breakdown behind them.
	Flight *FlightSample `json:"flight,omitempty"`
	// Trace is the request's span timeline (admission-wait → cache-lookup
	// → solve → per-phase → commit), present only under the same flight
	// opt-in — traced requests already bypass the result cache in both
	// directions, which is what keeps cached bodies byte-identical and
	// timestamp-free.
	Trace *Trace `json:"trace,omitempty"`
	Error string `json:"error,omitempty"`
}

// CountRun is the record one counting query emits: cmd/nearclique
// -count prints it under -json and cmd/nearcliqued serves it from
// /v1/count. The estimate fields mirror shadow.Result; the envelope
// (engine, digest, shape, Cost, Flight, Trace, Error) mirrors Run so
// downstream tooling joins solve and count records identically.
type CountRun struct {
	Engine      string `json:"engine"`
	GraphDigest string `json:"graph_digest,omitempty"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	Cost
	K          int     `json:"k"`
	Epsilon    float64 `json:"epsilon"`
	Samples    int     `json:"samples"`
	Confidence float64 `json:"confidence"`

	Cliques         float64 `json:"cliques"`
	CliquesErrBound float64 `json:"cliques_err_bound"`
	CliqueHits      int64   `json:"clique_hits"`
	NearCliques     float64 `json:"near_cliques"`
	NearErrBound    float64 `json:"near_err_bound"`
	NearHits        int64   `json:"near_hits"`

	CliqueLeaves int     `json:"clique_leaves"`
	CliqueWeight float64 `json:"clique_weight"`
	NearLeaves   int     `json:"near_leaves"`
	NearWeight   float64 `json:"near_weight"`
	Exact        bool    `json:"exact"`

	Flight *FlightSample `json:"flight,omitempty"`
	Trace  *Trace        `json:"trace,omitempty"`
	Error  string        `json:"error,omitempty"`
}

// FromCount assembles a CountRun from a counting outcome; res may be nil
// on failure, leaving only the envelope and the error.
func FromCount(engine string, g *graph.Graph, res *shadow.Result, wall time.Duration, err error) CountRun {
	r := CountRun{Engine: engine, GraphDigest: g.Digest(), N: g.N(), M: g.M()}
	r.WallNS = wall.Nanoseconds()
	if err != nil {
		r.Error = err.Error()
	}
	if res == nil {
		return r
	}
	r.K = res.K
	r.Epsilon = res.Epsilon
	r.Samples = res.Samples
	r.Confidence = res.Confidence
	r.Cliques = res.Cliques
	r.CliquesErrBound = res.CliquesErrBound
	r.CliqueHits = res.CliqueHits
	r.NearCliques = res.NearCliques
	r.NearErrBound = res.NearErrBound
	r.NearHits = res.NearHits
	r.CliqueLeaves = res.CliqueLeaves
	r.CliqueWeight = res.CliqueWeight
	r.NearLeaves = res.NearLeaves
	r.NearWeight = res.NearWeight
	r.Exact = res.Exact
	return r
}

// TraceSpan is one timed step of a request timeline, offsets relative to
// the trace epoch (the instant the server began handling the request).
type TraceSpan struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// Trace is the wire form of a request's span timeline. TraceID matches
// the response's X-Nearclique-Trace-Id header, so a body on disk and a
// log line at the edge join on one identifier.
type Trace struct {
	TraceID string      `json:"trace_id"`
	Spans   []TraceSpan `json:"spans"`
}

// FlightEvent is one flight-recorder observation in the wire schema:
// either one simulated round or one completed phase summary (Kind
// "round" | "phase"); see the flight package for field semantics.
type FlightEvent struct {
	Kind     string `json:"kind"`
	Phase    string `json:"phase"`
	Round    int64  `json:"round,omitempty"`
	Frontier int32  `json:"frontier,omitempty"`
	Frames   int64  `json:"frames,omitempty"`
	// Bytes is payload bytes, matching Cost.PayloadBytes granularity.
	Bytes     int64 `json:"payload_bytes,omitempty"`
	HeapDelta int64 `json:"heap_delta,omitempty"`
	// WallNS is the wall offset from the recorder's epoch at which the
	// event was recorded (observation-only; see flight.Event.WallNS).
	WallNS int64 `json:"wall_ns,omitempty"`
}

// FlightSample is a recorder snapshot: exact accounting totals plus the
// trailing event window (capped by the caller; Truncated reports how
// many retained events the cap cut).
type FlightSample struct {
	Capacity  int           `json:"capacity"`
	Offered   uint64        `json:"offered"`
	Dropped   uint64        `json:"dropped"`
	Truncated int           `json:"truncated,omitempty"`
	Events    []FlightEvent `json:"events"`
}

// FlightFromRecorder snapshots a recorder into the wire schema, keeping
// at most maxEvents of the most recent events (0 means all retained).
func FlightFromRecorder(rec *flight.Recorder, maxEvents int) *FlightSample {
	if rec == nil {
		return nil
	}
	evs := rec.Snapshot()
	s := &FlightSample{
		Capacity: rec.Capacity(),
		Offered:  rec.Offered(),
		Dropped:  rec.Dropped(),
	}
	if maxEvents > 0 && len(evs) > maxEvents {
		s.Truncated = len(evs) - maxEvents
		evs = evs[len(evs)-maxEvents:]
	}
	s.Events = make([]FlightEvent, len(evs))
	for i, ev := range evs {
		s.Events[i] = FlightEvent{
			Kind:      ev.Kind.String(),
			Phase:     rec.PhaseName(ev.Phase),
			Round:     ev.Round,
			Frontier:  ev.Frontier,
			Frames:    ev.Frames,
			Bytes:     ev.Bytes,
			HeapDelta: ev.HeapDelta,
			WallNS:    ev.WallNS,
		}
	}
	return s
}

// Measurement is the cmd/bench record: one timed workload on one engine,
// with the derived rates cmd/bench historically reported. HeapBytes is
// the runtime.ReadMemStats heap growth across the measured run (GC'd
// immediately before), so regressions in working-set size show up next to
// the wall-time ones.
type Measurement struct {
	Workload    string `json:"workload"`
	Engine      string `json:"engine"`
	GraphDigest string `json:"graph_digest,omitempty"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	Cost
	HeapBytes     uint64  `json:"heap_bytes"`
	RoundsPerSec  float64 `json:"rounds_per_sec"`
	MBytesPerSec  float64 `json:"payload_mb_per_sec"`
	Allocs        uint64  `json:"allocs"`
	AllocsPerRnd  float64 `json:"allocs_per_round"`
	RecoveredPct  float64 `json:"recovered_pct,omitempty"`
	SpeedupLegacy float64 `json:"speedup_vs_legacy,omitempty"`
	// Batched ε-Search throughput (cmd/bench -search-batch rows only):
	// Searches full bisections over independent coin seeds, Probes the
	// total probe runs they issued, with throughput and the frontier
	// engine's advantage over per-probe sharded simulation derived.
	Searches       int     `json:"searches,omitempty"`
	Probes         int     `json:"probes,omitempty"`
	ProbesPerSec   float64 `json:"probes_per_sec,omitempty"`
	SeedsPerSec    float64 `json:"seeds_per_sec,omitempty"`
	FoundEps       float64 `json:"found_eps,omitempty"`
	SpeedupSharded float64 `json:"speedup_vs_sharded,omitempty"`
	// Counting-workload fields (cmd/bench -count rows only): the query
	// shape, the resulting estimates, and the sampling throughput.
	K             int     `json:"k,omitempty"`
	CountSamples  int     `json:"count_samples,omitempty"`
	Cliques       float64 `json:"cliques,omitempty"`
	NearCliques   float64 `json:"near_cliques,omitempty"`
	SamplesPerSec float64 `json:"samples_per_sec,omitempty"`
}

// RefineMeasurement is the cmd/bench -refine record (BENCH_refine.json):
// base vs refined candidate quality on one planted-clique workload,
// aggregated over a grid of seeds. ImprovedPct is the fraction of seeds
// whose refined best candidate kept at least the base density while
// strictly growing in size or density — the quality axis the refinement
// subsystem is tracked by.
type RefineMeasurement struct {
	Workload           string  `json:"workload"`
	Engine             string  `json:"engine"`
	Refine             string  `json:"refine"`
	GraphDigest        string  `json:"graph_digest,omitempty"`
	N                  int     `json:"n"`
	M                  int     `json:"m"`
	Seeds              int     `json:"seeds"`
	ImprovedPct        float64 `json:"improved_pct"`
	MeanBaseSize       float64 `json:"mean_base_size"`
	MeanRefinedSize    float64 `json:"mean_refined_size"`
	MeanBaseDensity    float64 `json:"mean_base_density"`
	MeanRefinedDensity float64 `json:"mean_refined_density"`
	MeanMoves          float64 `json:"mean_moves"`
	BaseRecoveredPct   float64 `json:"base_recovered_pct,omitempty"`
	RecoveredPct       float64 `json:"recovered_pct,omitempty"`
	SolveWallNS        int64   `json:"solve_wall_ns"`
	RefineWallNS       int64   `json:"refine_wall_ns"`
}

// FlightMeasurement is the cmd/bench -flight record (BENCH_flight.json):
// one workload solved with the flight recorder detached and attached,
// best-of-k each, pinning the recorder's overhead. Transcript digests of
// the two runs must match — recording is observational by contract — and
// OverheadPct is the on-vs-off wall-time delta the <2% budget gates.
type FlightMeasurement struct {
	Workload      string  `json:"workload"`
	Engine        string  `json:"engine"`
	GraphDigest   string  `json:"graph_digest,omitempty"`
	N             int     `json:"n"`
	M             int     `json:"m"`
	Capacity      int     `json:"capacity"`
	OffWallNS     int64   `json:"off_wall_ns"`
	OnWallNS      int64   `json:"on_wall_ns"`
	OverheadPct   float64 `json:"overhead_pct"`
	Rounds        int64   `json:"rounds"`
	EventsOffered uint64  `json:"events_offered"`
	EventsDropped uint64  `json:"events_dropped"`
	DigestsMatch  bool    `json:"digests_match"`
}

// LoadMeasurement is the cmd/bench -load record (BENCH_graph.json): one
// graph-load measurement of one on-disk format, comparing the text
// edge-list parse path against the `.ncsr` snapshot-mmap path at equal
// graph shape. HeapBytes and Allocs come from runtime.ReadMemStats around
// the load; SpeedupVsText is wall-time relative to the "text" record of
// the same workload.
type LoadMeasurement struct {
	Workload      string  `json:"workload"`
	Format        string  `json:"format"` // "text" | "snap"
	GraphDigest   string  `json:"graph_digest,omitempty"`
	N             int     `json:"n"`
	M             int     `json:"m"`
	FileBytes     int64   `json:"file_bytes"`
	WallNS        int64   `json:"wall_ns"`
	HeapBytes     uint64  `json:"heap_bytes"`
	Allocs        uint64  `json:"allocs"`
	MBPerSec      float64 `json:"file_mb_per_sec"`
	SpeedupVsText float64 `json:"speedup_vs_text,omitempty"`
}

// FromResult assembles a Run from a solve outcome. res may carry partial
// metrics when err is non-nil (abort and cancellation paths); a nil res
// yields a record with only the graph shape, the wall time, and the error.
func FromResult(engine string, g *graph.Graph, res *core.Result, wall time.Duration, err error) Run {
	r := Run{Engine: engine, GraphDigest: g.Digest(), N: g.N(), M: g.M()}
	r.WallNS = wall.Nanoseconds()
	if err != nil {
		r.Error = err.Error()
	}
	if res == nil {
		return r
	}
	r.Rounds = res.Metrics.Rounds
	r.Frames = res.Metrics.Frames
	r.PayloadBytes = res.Metrics.Bits / 8
	r.MaxFrameBits = res.Metrics.MaxFrameBits
	r.SampleSizes = res.SampleSizes
	r.MaxComponent = res.MaxComponent
	r.Candidates = make([]Candidate, 0, len(res.Candidates))
	for _, c := range res.Candidates {
		r.Candidates = append(r.Candidates, Candidate{
			Label:   c.Label,
			Version: c.Version,
			Size:    len(c.Members),
			Density: c.Density,
			Members: c.Members,
		})
	}
	if res.RefineSpec != "" {
		r.Refine = res.RefineSpec
		r.RefinedSize = res.Metrics.RefinedSize
		r.RefinedDensity = res.Metrics.RefinedDensity
		r.RefineMoves = res.Metrics.RefineMoves
		r.Refined = make([]RefinedCandidate, 0, len(res.Refined))
		for _, ref := range res.Refined {
			r.Refined = append(r.Refined, RefinedCandidate{
				Label:       ref.Label,
				Size:        len(ref.Members),
				Density:     ref.Density,
				BaseSize:    ref.BaseSize,
				BaseDensity: ref.BaseDensity,
				SeedVertex:  ref.SeedVertex,
				Moves:       ref.Moves,
				Improved:    ref.Improved,
				Members:     ref.Members,
			})
		}
	}
	return r
}

// --- Serving-side records (cmd/nearcliqued) -----------------------------

// ServerStats is the cmd/nearcliqued /statz record: a point-in-time view
// of the daemon's queue, cache, and per-graph serving counters. Like the
// rest of this package it is the stable machine-readable schema —
// monitoring scrapes parse it, so fields are only ever added.
type ServerStats struct {
	UptimeSec     float64 `json:"uptime_sec"`
	Version       string  `json:"version,omitempty"`
	GoVersion     string  `json:"go_version"`
	Draining      bool    `json:"draining"`
	Concurrency   int     `json:"concurrency"`
	QueueDepth    int     `json:"queue_depth"`    // jobs waiting, excluding running
	QueueCapacity int     `json:"queue_capacity"` // waiting-slot budget (429 beyond it)
	InFlight      int     `json:"in_flight"`      // jobs running right now
	// Admission ledger. The counters reconcile exactly on every path
	// (solve and batch alike): Received == Accepted + Rejected + Refused,
	// with Accepted including the fast-path jobs that bypassed the wait
	// queue. Cache hits never enter this ledger — they answer without
	// submitting a job.
	Received int64 `json:"received"`     // submission attempts since start
	Accepted int64 `json:"accepted"`     // jobs admitted since start
	Rejected int64 `json:"rejected_429"` // jobs refused queue-full
	Refused  int64 `json:"refused_503"`  // jobs refused while draining
	FastPath int64 `json:"fast_path"`    // accepted jobs that bypassed the queue (cheap predicted cost)
	// Executed-job wall-time aggregate: the basis of the computed
	// Retry-After. Only actually executed solves count — cached replays
	// would drag the mean toward zero.
	JobsDone      int64   `json:"jobs_done"`
	MeanJobMS     float64 `json:"mean_job_ms"`
	RetryAfterSec int     `json:"retry_after_sec"` // what a 429 would advise right now
	// Latency is the per-endpoint distribution section, extracted from
	// the same histograms /metricsz exposes — percentiles here and bucket
	// counts there reconcile exactly because they read one set of atomics.
	Latency   []EndpointLatency `json:"latency,omitempty"`
	Cache     CacheStats        `json:"cache"`
	Flight    *FlightStats      `json:"flight,omitempty"`
	CostModel *CostStats        `json:"cost_model,omitempty"`
	Graphs    []GraphStats      `json:"graphs"`
}

// EndpointLatency is one endpoint's request-latency distribution in the
// /statz latency section: exact count/sum plus the log-bucket
// percentiles (conservative by at most one factor-of-2 bucket width).
type EndpointLatency struct {
	Endpoint string  `json:"endpoint"`
	Count    uint64  `json:"count"`
	MeanMS   float64 `json:"mean_ms"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
	P999MS   float64 `json:"p999_ms"`
}

// FlightStats is the /statz flight section: the aggregate over every
// traced solve (requests that opted in with the flight parameter) plus
// the trailing event window of the most recent one.
type FlightStats struct {
	SolvesTraced  int64         `json:"solves_traced"`
	EventsOffered uint64        `json:"events_offered"`
	EventsDropped uint64        `json:"events_dropped"`
	Rounds        int64         `json:"rounds"`
	Frames        int64         `json:"frames"`
	PayloadBytes  int64         `json:"payload_bytes"`
	Recent        []FlightEvent `json:"recent,omitempty"`
}

// CostEngine is one engine's fitted cost-model state as served from
// /statz: de-logged per-unit rates (see internal/costmodel).
type CostEngine struct {
	Engine       string  `json:"engine"`
	Samples      int64   `json:"samples"`
	NSPerWork    float64 `json:"ns_per_work"`
	WorkExponent float64 `json:"work_exponent,omitempty"`
	RoundsPerVer float64 `json:"rounds_per_version,omitempty"`
	BytesPerWork float64 `json:"bytes_per_work,omitempty"`
}

// CostStats is the /statz cost-model section.
type CostStats struct {
	Samples int64        `json:"samples"`
	Engines []CostEngine `json:"engines,omitempty"`
}

// CacheStats describes the daemon's deterministic result cache.
type CacheStats struct {
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
}

// ServeMeasurement is the cmd/loadgen record (BENCH_serve.json): one
// open-loop load scenario against a live daemon, reporting the served
// latency distribution and the shed rates. Latency percentiles come from
// the same log-bucket histogram class the server uses, so harness-side
// and server-side distributions are directly comparable. Offered follows
// the arrival schedule (open loop: arrivals do not wait for completions);
// Completed + Shed429 + Shed504 + Errors5xx + Failed == Offered.
type ServeMeasurement struct {
	Scenario string `json:"scenario"`
	Pattern  string `json:"pattern"` // "constant" | "ramp" | "burst"
	Mix      string `json:"mix"`     // request mix, e.g. "solve:8,batch:1,refine:1"
	// TargetRPS is the scenario's arrival rate (mean rate for ramp/burst).
	TargetRPS  float64 `json:"target_rps"`
	DurationMS int64   `json:"duration_ms"`
	Offered    int64   `json:"offered"`
	Completed  int64   `json:"completed"` // 2xx responses
	Shed429    int64   `json:"shed_429"`  // queue-full rejections
	Shed504    int64   `json:"shed_504"`  // deadline expiries
	Errors5xx  int64   `json:"errors_5xx"`
	Failed     int64   `json:"failed"` // transport-level failures
	ShedRate   float64 `json:"shed_rate"`
	Throughput float64 `json:"throughput_rps"` // completed per wall second
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	P999MS     float64 `json:"p999_ms"`
	MeanMS     float64 `json:"mean_ms"`
	// PredictedNS is the cost model's per-solve prediction for the
	// scenario's graph/params when reliable (the CI gate's p99 baseline).
	PredictedNS int64 `json:"predicted_ns,omitempty"`
}

// GraphStats describes one registered graph: identity (name, shape,
// content digest) plus its serving counters. GET /v1/graphs returns the
// same records, so listing and monitoring share one schema.
type GraphStats struct {
	Name         string `json:"name"`
	Path         string `json:"path,omitempty"`
	GraphDigest  string `json:"graph_digest"`
	N            int    `json:"n"`
	M            int    `json:"m"`
	LoadedAtUnix int64  `json:"loaded_at_unix"`
	Solves       int64  `json:"solves"`
	CacheHits    int64  `json:"cache_hits"`
	CacheMisses  int64  `json:"cache_misses"`
}
