package report

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"nearclique/internal/core"
	"nearclique/internal/gen"
)

// TestSharedCostBlockIsFlat pins the wire format: the embedded Cost block
// must flatten into the same top-level keys in both record types, so one
// parser serves cmd/nearclique -json and cmd/bench output.
func TestSharedCostBlockIsFlat(t *testing.T) {
	for _, record := range []interface{}{
		Run{Engine: "sharded", N: 10, M: 20, Cost: Cost{Rounds: 3, Frames: 4, PayloadBytes: 5, WallNS: 6}},
		Measurement{Workload: "w", Engine: "sharded", N: 10, M: 20, Cost: Cost{Rounds: 3, Frames: 4, PayloadBytes: 5, WallNS: 6}},
	} {
		enc, err := json.Marshal(record)
		if err != nil {
			t.Fatal(err)
		}
		var flat map[string]interface{}
		if err := json.Unmarshal(enc, &flat); err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"engine", "n", "m", "rounds", "frames", "payload_bytes", "wall_ns"} {
			if _, ok := flat[key]; !ok {
				t.Errorf("%T: missing shared key %q in %s", record, key, enc)
			}
		}
		if _, ok := flat["Cost"]; ok {
			t.Errorf("%T: Cost did not flatten", record)
		}
	}
}

func TestFromResultCarriesPartialsAndErrors(t *testing.T) {
	g := gen.ErdosRenyi(60, 0.1, 1)
	res, err := core.Find(g, core.Options{Epsilon: 0.3, ExpectedSample: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := FromResult("sharded", g, res, 5*time.Millisecond, nil)
	if rec.N != 60 || rec.Rounds != res.Metrics.Rounds || rec.WallNS != 5e6 || rec.Error != "" {
		t.Fatalf("unexpected record: %+v", rec)
	}

	failed := FromResult("sharded", g, res, time.Millisecond, errors.New("boom"))
	if failed.Error != "boom" || failed.Rounds != res.Metrics.Rounds {
		t.Fatal("error record lost the error or the partial costs")
	}
	empty := FromResult("seq", g, nil, time.Millisecond, errors.New("early"))
	if empty.Error != "early" || empty.Rounds != 0 || empty.N != 60 {
		t.Fatalf("nil-result record malformed: %+v", empty)
	}
}
