// Package tester implements a Goldreich–Goldwasser–Ron style ρ-clique
// property tester in the dense-graph model (the paper's reference [10]),
// plus the "approximate find" companion that extracts an ε-near clique
// once the tester accepts. It exists to reproduce the methodological claim
// of the paper: Algorithm DistNearClique is a distributed adaptation of
// this tester with better tolerance — (ε³, ε)-tolerant versus the tester's
// (ε⁶, ε) per Parnas–Ron–Rubinfeld [19]. Experiment E10 sweeps planted
// near-clique parameters across both thresholds.
package tester

import (
	"math"
	"math/bits"
	"math/rand"

	"nearclique/internal/bitset"
	"nearclique/internal/graph"
)

// Oracle provides pair-query access to a graph and counts queries, the
// dense-graph-model cost measure.
type Oracle struct {
	g       *graph.Graph
	queries int
	seen    map[[2]int]bool
}

// NewOracle wraps g with a query counter. Repeated queries of the same
// pair are counted once (the standard convention).
func NewOracle(g *graph.Graph) *Oracle {
	return &Oracle{g: g, seen: make(map[[2]int]bool)}
}

// Adjacent answers one pair query.
func (o *Oracle) Adjacent(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	key := [2]int{u, v}
	if !o.seen[key] {
		o.seen[key] = true
		o.queries++
	}
	return o.g.HasEdge(u, v)
}

// Queries returns the number of distinct pair queries so far.
func (o *Oracle) Queries() int { return o.queries }

// N returns the graph size (known to dense-model testers).
func (o *Oracle) N() int { return o.g.N() }

// Options configures the ρ-clique tester.
type Options struct {
	// Rho is the clique-fraction parameter: test for a clique of size ρn.
	Rho float64
	// Epsilon is the distance parameter.
	Epsilon float64
	// Seed drives sampling.
	Seed int64
	// SampleU bounds the first sample (subsets of it are enumerated);
	// 0 means the default min(⌈4/ε·ln(8/ε)⌉, 14).
	SampleU int
	// SampleW bounds the second sample; 0 means ⌈16/ε²·ln(8/ε)⌉.
	SampleW int
}

// Verdict is the tester's output.
type Verdict struct {
	Accept bool
	// Witness is the subset U' ⊆ U that certified acceptance (nil on
	// reject).
	Witness []int
	// Queries is the number of pair queries spent.
	Queries int
}

func (o Options) samples(n int) (int, int) {
	u := o.SampleU
	if u == 0 {
		u = int(math.Ceil(4 / o.Epsilon * math.Log(8/o.Epsilon)))
		if u > 14 {
			u = 14 // keep 2^|U| enumeration feasible
		}
	}
	w := o.SampleW
	if w == 0 {
		w = int(math.Ceil(16 / (o.Epsilon * o.Epsilon) * math.Log(8/o.Epsilon)))
	}
	if u > n {
		u = n
	}
	if w > n {
		w = n
	}
	return u, w
}

// TestRhoClique runs the GGR-style two-sample ρ-clique tester:
//
//  1. Sample U (small) and W (larger) uniformly.
//  2. For every sufficiently large subset U' ⊆ U that induces a clique,
//     check whether the fraction of W adjacent to (almost) all of U' is at
//     least ρ − ε/2.
//  3. Accept iff some U' passes.
//
// If G has a ρn-clique the tester accepts with high constant probability
// (the clique's trace on U is such a U'); if no ρn-set is even an
// (ε/ρ²)-near clique it rejects w.h.p. Query complexity is
// |U|² + |U|·|W| = Õ(1/ε⁴) with the default samples (the paper's Õ(1/ε⁶)
// bound is the tightened analysis; the structure is identical).
func TestRhoClique(o *Oracle, opts Options) Verdict {
	n := o.N()
	if n == 0 {
		return Verdict{Accept: opts.Rho <= 0}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	uSize, wSize := opts.samples(n)
	u := sampleNodes(rng, n, uSize)
	w := sampleNodes(rng, n, wSize)

	// Adjacency of U internally and U×W, via the oracle.
	uAdj := make([]uint64, len(u)) // bitmask over u (|U| ≤ 14 < 64)
	for i := range u {
		for j := i + 1; j < len(u); j++ {
			if u[i] != u[j] && o.Adjacent(u[i], u[j]) {
				uAdj[i] |= 1 << uint(j)
				uAdj[j] |= 1 << uint(i)
			}
		}
	}
	wAdj := make([]uint64, len(w)) // per w-node, bitmask over u
	for wi, wn := range w {
		for ui, un := range u {
			// A node trivially extends any clique it belongs to, so it is
			// compatible with itself.
			if wn == un || o.Adjacent(wn, un) {
				wAdj[wi] |= 1 << uint(ui)
			}
		}
	}

	minU := int(math.Ceil((opts.Rho - opts.Epsilon/4) * float64(len(u))))
	if minU < 1 {
		minU = 1
	}
	wantW := (opts.Rho - opts.Epsilon/2) * float64(len(w))

	var bestWitness []int
	for mask := uint64(1); mask < 1<<uint(len(u)); mask++ {
		size := bits.OnesCount64(mask)
		if size < minU {
			continue
		}
		if !isCliqueMask(uAdj, mask) {
			continue
		}
		// Count W-nodes adjacent to every member of U'.
		count := 0
		for wi := range w {
			if wAdj[wi]&mask == mask {
				count++
			}
		}
		if float64(count) >= wantW {
			witness := make([]int, 0, size)
			for i := range u {
				if mask&(1<<uint(i)) != 0 {
					witness = append(witness, u[i])
				}
			}
			bestWitness = witness
			break
		}
	}
	return Verdict{Accept: bestWitness != nil, Witness: bestWitness, Queries: o.Queries()}
}

// isCliqueMask reports whether the masked subset is fully connected.
func isCliqueMask(adj []uint64, mask uint64) bool {
	m := mask
	for m != 0 {
		i := bits.TrailingZeros64(m)
		m &= m - 1
		// Every other member must be a neighbor of i.
		if (mask&^(1<<uint(i)))&^adj[i] != 0 {
			return false
		}
	}
	return true
}

// ApproximateFind implements the GGR companion: given an accepting
// witness U', return every node adjacent to at least a (1−ε) fraction of
// U' — an O(n·|U'|)-query step that yields a large near-clique when the
// tester accepted (the paper's "approximate find" in O(n) time).
func ApproximateFind(o *Oracle, witness []int, eps float64) []int {
	if len(witness) == 0 {
		return nil
	}
	threshold := (1 - eps) * float64(len(witness))
	var out []int
	for v := 0; v < o.N(); v++ {
		cnt := 0
		for _, u := range witness {
			if v != u && o.Adjacent(v, u) {
				cnt++
			}
		}
		if float64(cnt) >= threshold-1e-9 {
			out = append(out, v)
		}
	}
	return out
}

// BestNearClique runs TestRhoClique and, on acceptance, ApproximateFind,
// returning the found set (possibly nil), its density, and total queries.
func BestNearClique(g *graph.Graph, opts Options) ([]int, float64, int) {
	o := NewOracle(g)
	v := TestRhoClique(o, opts)
	if !v.Accept {
		return nil, 0, o.Queries()
	}
	set := ApproximateFind(o, v.Witness, opts.Epsilon)
	density := g.Density(bitset.FromIndices(g.N(), set))
	return set, density, o.Queries()
}

// sampleNodes draws size distinct nodes uniformly (or all nodes if
// size ≥ n).
func sampleNodes(rng *rand.Rand, n, size int) []int {
	if size >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return rng.Perm(n)[:size]
}
