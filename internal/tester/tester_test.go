package tester

import (
	"testing"

	"nearclique/internal/bitset"
	"nearclique/internal/gen"
)

func TestOracleCountsDistinctQueries(t *testing.T) {
	g := gen.Complete(5)
	o := NewOracle(g)
	o.Adjacent(0, 1)
	o.Adjacent(1, 0) // same pair
	o.Adjacent(0, 2)
	if o.Queries() != 2 {
		t.Fatalf("queries=%d, want 2", o.Queries())
	}
	if !o.Adjacent(0, 1) {
		t.Fatal("adjacency wrong")
	}
}

func TestAcceptsPlantedClique(t *testing.T) {
	// A 40% planted clique should be accepted for ρ=0.3 on most seeds.
	p := gen.PlantedClique(300, 120, 0.05, 7)
	accepts := 0
	for seed := int64(0); seed < 10; seed++ {
		o := NewOracle(p.Graph)
		v := TestRhoClique(o, Options{Rho: 0.3, Epsilon: 0.25, Seed: seed})
		if v.Accept {
			accepts++
		}
	}
	if accepts < 6 {
		t.Fatalf("accepted only %d/10 runs on a graph with a large clique", accepts)
	}
}

func TestRejectsSparseGraph(t *testing.T) {
	// G(n, 0.05) has no large near-clique: reject on most seeds.
	g := gen.ErdosRenyi(300, 0.05, 3)
	rejects := 0
	for seed := int64(0); seed < 10; seed++ {
		o := NewOracle(g)
		v := TestRhoClique(o, Options{Rho: 0.3, Epsilon: 0.25, Seed: seed})
		if !v.Accept {
			rejects++
		}
	}
	if rejects < 8 {
		t.Fatalf("rejected only %d/10 runs on a sparse graph", rejects)
	}
}

func TestQueriesIndependentOfN(t *testing.T) {
	// Dense-model testers use Õ(poly(1/ε)) queries, independent of n.
	// Fix the sample sizes so neither graph clamps them.
	opts := Options{Rho: 0.3, Epsilon: 0.25, Seed: 5, SampleU: 10, SampleW: 200}
	small := NewOracle(gen.ErdosRenyi(500, 0.05, 1))
	TestRhoClique(small, opts)
	large := NewOracle(gen.ErdosRenyi(3000, 0.01, 2))
	TestRhoClique(large, opts)
	// Distinct-pair collisions make the counts differ slightly; they must
	// not scale with n.
	if diff := large.Queries() - small.Queries(); diff > small.Queries()/5 || -diff > small.Queries()/5 {
		t.Fatalf("query counts scale with n: %d vs %d", small.Queries(), large.Queries())
	}
}

func TestWitnessIsClique(t *testing.T) {
	p := gen.PlantedClique(200, 100, 0.05, 9)
	for seed := int64(0); seed < 5; seed++ {
		o := NewOracle(p.Graph)
		v := TestRhoClique(o, Options{Rho: 0.4, Epsilon: 0.2, Seed: seed})
		if !v.Accept {
			continue
		}
		set := bitset.FromIndices(p.Graph.N(), v.Witness)
		if !p.Graph.IsClique(set) {
			t.Fatalf("seed %d: witness %v is not a clique", seed, v.Witness)
		}
	}
}

func TestApproximateFindRecoversNearClique(t *testing.T) {
	p := gen.PlantedClique(250, 100, 0.03, 11)
	found := false
	for seed := int64(0); seed < 8 && !found; seed++ {
		set, density, _ := BestNearClique(p.Graph, Options{Rho: 0.35, Epsilon: 0.2, Seed: seed})
		if set == nil {
			continue
		}
		if len(set) >= 80 && density >= 0.75 {
			found = true
		}
	}
	if !found {
		t.Fatal("approximate find never recovered a large near-clique")
	}
}

func TestApproximateFindEmptyWitness(t *testing.T) {
	o := NewOracle(gen.Complete(5))
	if out := ApproximateFind(o, nil, 0.2); out != nil {
		t.Fatalf("empty witness returned %v", out)
	}
}

func TestEmptyGraph(t *testing.T) {
	o := NewOracle(gen.Empty(0))
	v := TestRhoClique(o, Options{Rho: 0.3, Epsilon: 0.2, Seed: 1})
	if v.Accept {
		t.Fatal("accepted ρ-clique on an empty graph")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := gen.PlantedClique(150, 60, 0.05, 13).Graph
	a := TestRhoClique(NewOracle(g), Options{Rho: 0.3, Epsilon: 0.25, Seed: 4})
	b := TestRhoClique(NewOracle(g), Options{Rho: 0.3, Epsilon: 0.25, Seed: 4})
	if a.Accept != b.Accept || a.Queries != b.Queries {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestSampleCaps(t *testing.T) {
	// Tiny graphs: samples are clamped to n and nothing panics.
	g := gen.Complete(3)
	o := NewOracle(g)
	v := TestRhoClique(o, Options{Rho: 0.5, Epsilon: 0.3, Seed: 1})
	if !v.Accept {
		t.Fatal("K3 should be accepted as having a 50% clique")
	}
}
