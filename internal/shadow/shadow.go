// Package shadow implements the Turán-shadow counting engine (PEANUTS,
// Jain & Seshadhri; PAPERS.md): provably accurate k-clique and
// near-clique counting and uniform sampling on graphs far beyond what
// CONGEST round simulation can touch.
//
// The construction refines a degeneracy-ordered DAG: the shadow starts as
// the set of pairs (N⁺(v), k−1) over every vertex v — N⁺(v) the
// later-neighbors of v in the degeneracy order — and a pair (S, ℓ) is
// refined while ℓ ≥ 3 and the edge density of G[S] is below the Turán
// threshold 1 − 1/(ℓ−1), by re-peeling G[S] into its own degeneracy
// order and emitting (S ∩ N⁺_S(u), ℓ−1) for every u ∈ S. Leaves are
// dense enough that Turán's theorem guarantees K_ℓ ⊆ G[S]; sampling an
// ℓ-subset of a leaf chosen with probability proportional to C(|S|, ℓ)
// and testing whether it is a clique yields an unbiased, concentrated
// estimator of the global k-clique count. Every k-clique of G lies in
// exactly one (leaf, prefix) pair, which is what makes the estimator a
// partition argument rather than an inclusion-exclusion.
//
// Determinism contract (DESIGN.md §15): construction is sequential over
// roots in index order with an explicit LIFO work-stack (no recursion,
// no scheduling dependence), and sampling draws every coin from the
// repo's counter-based RNG keyed by (seed, sample index) — so estimates
// are bit-identical at a fixed seed across GOMAXPROCS and across
// sequential vs. batched sampling. No wall-clock reads happen anywhere
// in this package (nclint transcriptScope); callers time it.
package shadow

import (
	"context"
	"errors"
	"fmt"

	"nearclique/internal/graph"
)

// DefaultMaxLeafInts bounds the persistent leaf arena (set + prefix
// int32s) when Options.MaxLeafInts is zero: 1<<26 entries = 256 MiB,
// far above anything the conformance grid needs but a hard stop before
// a pathological graph swaps the host.
const DefaultMaxLeafInts = 1 << 26

// ErrBudget is wrapped by build errors when the shadow outgrows
// MaxLeafInts; callers surface it as a capacity error, never a panic.
var ErrBudget = errors.New("shadow: leaf arena budget exceeded")

// leaf is one closed shadow node: set is sets[setOff:setOff+setLen]
// (global vertex ids, ascending), the prefix — the clique every member
// of set is adjacent to — is pre[preOff:preOff+t−ell] for build target
// t, and the sampling weight is C(setLen, ell).
type leaf struct {
	setOff, setLen int32
	preOff         int32
	ell            int32
}

// dag is a built Turán shadow for cliques of size t.
type dag struct {
	g      *graph.Graph
	t      int     // clique size the shadow was built for
	sets   []int32 // concatenated leaf sets
	pre    []int32 // concatenated leaf prefixes
	leaves []leaf
	cum    []float64 // cumulative weights, cum[i] = Σ w(leaves[..i])
	weight float64   // total weight W = cum[len-1]

	refined int // internal nodes expanded (stats / flight)
}

// workNode is a stack entry during refinement; set and prefix live in
// the per-root scratch arenas and are truncated when the root drains.
type workNode struct {
	setOff, setLen int32
	preOff, preLen int32
	ell            int32
}

// builder carries the O(n) scratch shared across roots.
type builder struct {
	g      *graph.Graph
	rank   []int32 // global degeneracy rank
	local  []int32 // global id -> local index+1 within the current set, 0 = absent
	stack  []workNode
	wset   []int32 // work arena: candidate sets
	wpre   []int32 // work arena: prefixes
	d      *dag
	budget int
	pops   int
}

// build constructs the Turán shadow for t-cliques (t ≥ 2). ctx is
// checked every few hundred stack pops so a canceled request abandons a
// half-built shadow promptly.
func build(ctx context.Context, g *graph.Graph, t int, budget int) (*dag, error) {
	if t < 2 {
		return nil, fmt.Errorf("shadow: clique size %d < 2", t)
	}
	if budget <= 0 {
		budget = DefaultMaxLeafInts
	}
	d := &dag{g: g, t: t}
	n := g.N()
	if n == 0 {
		d.cum = nil
		return d, nil
	}
	order := g.DegeneracyOrder()
	b := &builder{
		g:      g,
		rank:   make([]int32, n),
		local:  make([]int32, n),
		d:      d,
		budget: budget,
	}
	for i, v := range order {
		b.rank[v] = int32(i)
	}

	// Roots in vertex-index order (not peel order): determinism wants a
	// canonical sequence, and index order keeps leaf ids stable under
	// any change to peel tie-breaking.
	for v := 0; v < n; v++ {
		b.wset = b.wset[:0]
		b.wpre = b.wpre[:0]
		b.stack = b.stack[:0]
		for _, w := range g.Neighbors(v) {
			if b.rank[w] > b.rank[v] {
				b.wset = append(b.wset, w)
			}
		}
		if len(b.wset) < t-1 {
			continue // C(|S|, t−1) = 0: contributes nothing
		}
		b.wpre = append(b.wpre, int32(v))
		b.stack = append(b.stack, workNode{
			setOff: 0, setLen: int32(len(b.wset)),
			preOff: 0, preLen: 1,
			ell: int32(t - 1),
		})
		if err := b.drain(ctx); err != nil {
			return nil, err
		}
	}

	d.cum = make([]float64, len(d.leaves))
	total := 0.0
	for i, lf := range d.leaves {
		total += binom(int(lf.setLen), int(lf.ell))
		d.cum[i] = total
	}
	d.weight = total
	return d, nil
}

// drain processes the work-stack until empty (one root's subtree).
func (b *builder) drain(ctx context.Context) error {
	for len(b.stack) > 0 {
		b.pops++
		if b.pops&0xff == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		nd := b.stack[len(b.stack)-1]
		b.stack = b.stack[:len(b.stack)-1]
		set := b.wset[nd.setOff : nd.setOff+nd.setLen]
		sz := len(set)

		// Closed leaf when small ℓ or dense enough for Turán's theorem.
		if int(nd.ell) <= 2 || denseEnough(b, set, int(nd.ell)) {
			if err := b.emit(nd); err != nil {
				return err
			}
			continue
		}
		b.d.refined++

		// Induced subgraph of set: local CSR over local indices
		// 0..sz-1, in ascending global-id order (set is sorted).
		for i, v := range set {
			b.local[v] = int32(i) + 1
		}
		deg := make([]int32, sz)
		for i, v := range set {
			for _, w := range b.g.Neighbors(int(v)) {
				if b.local[w] != 0 {
					deg[i]++
				}
			}
		}
		off := make([]int32, sz+1)
		for i := 0; i < sz; i++ {
			off[i+1] = off[i] + deg[i]
		}
		adj := make([]int32, off[sz])
		fill := make([]int32, sz)
		for i, v := range set {
			for _, w := range b.g.Neighbors(int(v)) {
				if li := b.local[w]; li != 0 {
					adj[off[i]+fill[i]] = li - 1
					fill[i]++
				}
			}
		}
		lrank := peelLocal(sz, off, adj)
		for _, v := range set {
			b.local[v] = 0
		}

		// Children: for every u ∈ set, the later-neighbors of u in
		// G[set]'s own degeneracy order, at ℓ−1, prefix+[u]. Pushed in
		// index order — the LIFO pop order is then deterministic too.
		for i := 0; i < sz; i++ {
			childOff := int32(len(b.wset))
			for j := off[i]; j < off[i+1]; j++ {
				if w := adj[j]; lrank[w] > lrank[i] {
					b.wset = append(b.wset, set[w])
				}
			}
			childLen := int32(len(b.wset)) - childOff
			if int(childLen) < int(nd.ell)-1 {
				b.wset = b.wset[:childOff] // weight 0: drop
				continue
			}
			preOff := int32(len(b.wpre))
			b.wpre = append(b.wpre, b.wpre[nd.preOff:nd.preOff+nd.preLen]...)
			b.wpre = append(b.wpre, set[i])
			b.stack = append(b.stack, workNode{
				setOff: childOff, setLen: childLen,
				preOff: preOff, preLen: nd.preLen + 1,
				ell: nd.ell - 1,
			})
		}
	}
	return nil
}

// denseEnough reports whether G[set] meets the Turán density threshold
// 1 − 1/(ℓ−1), i.e. e(G[set]) ≥ (1 − 1/(ℓ−1))·C(|set|,2), using exact
// integer arithmetic so the boundary never wobbles on float rounding.
func denseEnough(b *builder, set []int32, ell int) bool {
	sz := len(set)
	if sz < 2 {
		return true
	}
	for _, v := range set {
		b.local[v] = 1
	}
	edges := 0
	for _, v := range set {
		for _, w := range b.g.Neighbors(int(v)) {
			if b.local[w] != 0 {
				edges++
			}
		}
	}
	for _, v := range set {
		b.local[v] = 0
	}
	edges /= 2
	// e ≥ (1 − 1/(ℓ−1))·sz(sz−1)/2  ⇔  2e(ℓ−1) ≥ (ℓ−2)·sz·(sz−1)
	return 2*edges*(ell-1) >= (ell-2)*sz*(sz-1)
}

// emit persists a closed leaf into the dag's arenas.
func (b *builder) emit(nd workNode) error {
	need := len(b.d.sets) + int(nd.setLen) + len(b.d.pre) + int(nd.preLen)
	if need > b.budget {
		return fmt.Errorf("%w: %d int32s (limit %d); raise MaxLeafInts or lower k", ErrBudget, need, b.budget)
	}
	lf := leaf{
		setOff: int32(len(b.d.sets)), setLen: nd.setLen,
		preOff: int32(len(b.d.pre)),
		ell:    nd.ell,
	}
	b.d.sets = append(b.d.sets, b.wset[nd.setOff:nd.setOff+nd.setLen]...)
	b.d.pre = append(b.d.pre, b.wpre[nd.preOff:nd.preOff+nd.preLen]...)
	b.d.leaves = append(b.d.leaves, lf)
	return nil
}

// peelLocal computes degeneracy ranks for a local CSR (the
// Batagelj–Zaveršnik peel of shadow.go's parent loop, specialized to
// int32 scratch): rank[i] is node i's position in the peel order.
func peelLocal(n int, off, adj []int32) []int32 {
	core := make([]int32, n)
	maxDeg := int32(0)
	for i := 0; i < n; i++ {
		core[i] = off[i+1] - off[i]
		if core[i] > maxDeg {
			maxDeg = core[i]
		}
	}
	bin := make([]int32, maxDeg+2)
	for i := 0; i < n; i++ {
		bin[core[i]]++
	}
	start := int32(0)
	for d := int32(0); d <= maxDeg; d++ {
		cnt := bin[d]
		bin[d] = start
		start += cnt
	}
	vert := make([]int32, n)
	pos := make([]int32, n)
	for i := 0; i < n; i++ {
		pos[i] = bin[core[i]]
		vert[pos[i]] = int32(i)
		bin[core[i]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0
	for i := 0; i < n; i++ {
		v := vert[i]
		for j := off[v]; j < off[v+1]; j++ {
			u := adj[j]
			if core[u] <= core[v] {
				continue
			}
			du := core[u]
			pu := pos[u]
			pw := bin[du]
			x := vert[pw]
			if u != x {
				vert[pu], vert[pw] = vert[pw], vert[pu]
				pos[u], pos[x] = pw, pu
			}
			bin[du]++
			core[u]--
		}
	}
	rank := make([]int32, n)
	for i, v := range vert {
		rank[v] = int32(i)
	}
	return rank
}

// binom returns C(n, k) as a float64 (exact for the small k the engine
// uses; k ≤ 2 and leaf sizes bounded by degeneracy keep it far below
// 2^53 for any graph the budget admits).
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r = r * float64(n-k+i) / float64(i)
	}
	return r
}
