package shadow

import (
	"context"
	"math"
	"testing"

	"nearclique/internal/graph"
)

// FuzzShadow feeds arbitrary byte strings through edge-list decoding
// into Count: the engine must never panic and never emit a non-finite
// or negative estimate, whatever the CSR shape — the CI fuzz job's
// never-panic contract for the counting path.
func FuzzShadow(f *testing.F) {
	f.Add([]byte{}, uint8(3), uint8(0))
	f.Add([]byte{0, 1, 1, 2, 2, 0}, uint8(3), uint8(64))
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 2, 1, 3, 2, 3}, uint8(4), uint8(128))
	f.Add([]byte{9, 9, 1, 1, 0, 255}, uint8(5), uint8(255))
	f.Fuzz(func(t *testing.T, data []byte, kb, epsb uint8) {
		const n = 48
		var edges [][2]int
		for i := 0; i+1 < len(data) && i < 4096; i += 2 {
			u, v := int(data[i])%n, int(data[i+1])%n
			if u != v {
				edges = append(edges, [2]int{u, v})
			}
		}
		g := graph.FromEdges(n, edges)
		k := 2 + int(kb)%5           // 2..6
		eps := float64(epsb) / 256.0 // [0, 1)
		res, err := Count(context.Background(), g, Options{
			K: k, Epsilon: eps, Samples: 128, Seed: 1, MaxLeafInts: 1 << 20,
		})
		if err != nil {
			return // budget/validation errors are fine; panics are not
		}
		for name, v := range map[string]float64{
			"cliques": res.Cliques, "near": res.NearCliques,
			"cliques_err": res.CliquesErrBound, "near_err": res.NearErrBound,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("%s = %v is not a finite non-negative estimate", name, v)
			}
		}
		if res.NearCliques+res.NearErrBound+1e-9 < res.Cliques-res.CliquesErrBound {
			t.Fatalf("near interval [%v±%v] entirely below clique interval [%v±%v]",
				res.NearCliques, res.NearErrBound, res.Cliques, res.CliquesErrBound)
		}
	})
}
