package shadow

import (
	"context"
	"errors"
	"math"
	"testing"

	"nearclique/internal/congest"
	"nearclique/internal/graph"
)

// gnp builds a deterministic G(n, p) from the repo's counter RNG.
func gnp(n int, p float64, seed int64) *graph.Graph {
	rng := congest.NewNodeRand(seed, 0)
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return graph.FromEdges(n, edges)
}

// planted builds sparse noise with a planted clique on the first size nodes.
func planted(n, size int, seed int64) *graph.Graph {
	rng := congest.NewNodeRand(seed, 1)
	var edges [][2]int
	for u := 0; u < size; u++ {
		for v := u + 1; v < size; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, [2]int{u, v})
		}
	}
	return graph.FromEdges(n, edges)
}

func complete(n int) *graph.Graph {
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	return graph.FromEdges(n, edges)
}

func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10}, {5, 5, 1}, {5, 0, 1}, {4, 5, 0}, {10, 3, 120}, {0, 0, 1}, {3, -1, 0},
	}
	for _, c := range cases {
		if got := binom(c.n, c.k); got != c.want {
			t.Errorf("binom(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestShadowWeightBoundsCliqueCount(t *testing.T) {
	// The shadow's total weight upper-bounds the clique count (every
	// k-clique sits in exactly one leaf, and a leaf of weight w holds at
	// most w of them); on a complete graph every leaf is fully dense so
	// the weight is exact.
	g := complete(10)
	for k := 3; k <= 5; k++ {
		d, err := build(context.Background(), g, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		exact, _, err := CountExact(g, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := binom(10, k); exact != want {
			t.Fatalf("k=%d: exact = %v, want %v", k, exact, want)
		}
		if d.weight != exact {
			t.Errorf("k=%d: complete-graph shadow weight %v != clique count %v", k, d.weight, exact)
		}
	}
	spr := gnp(60, 0.2, 7)
	for k := 3; k <= 5; k++ {
		d, err := build(context.Background(), spr, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		exact, _, err := CountExact(spr, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d.weight < exact {
			t.Errorf("k=%d: shadow weight %v < clique count %v", k, d.weight, exact)
		}
	}
}

func TestCountExactMatchesBruteForce(t *testing.T) {
	// Independently verify CountExact's 1/d identity by enumerating all
	// k-subsets on tiny graphs: near-clique = misses ≤ ⌊ε·C(k,2)⌋ and
	// contains at least one (k−1)-clique.
	graphs := []*graph.Graph{
		gnp(11, 0.45, 3), gnp(12, 0.3, 4), planted(12, 5, 5), complete(8),
		graph.FromEdges(4, nil), graph.FromEdges(6, [][2]int{{0, 1}, {2, 3}, {4, 5}}),
	}
	for gi, g := range graphs {
		for k := 3; k <= 5; k++ {
			for _, eps := range []float64{0, 0.2, 0.34, 0.5} {
				wantC, wantN := bruteForce(g, k, eps)
				gotC, gotN, err := CountExact(g, k, eps)
				if err != nil {
					t.Fatal(err)
				}
				if gotC != wantC || gotN != wantN {
					t.Errorf("graph %d k=%d eps=%v: CountExact = (%v, %v), brute force = (%v, %v)",
						gi, k, eps, gotC, gotN, wantC, wantN)
				}
			}
		}
	}
}

// bruteForce enumerates every k-subset.
func bruteForce(g *graph.Graph, k int, eps float64) (cliques, near float64) {
	n := g.N()
	maxMiss := maxMissFor(k, eps)
	sub := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			miss := 0
			for a := 0; a < k; a++ {
				for b := a + 1; b < k; b++ {
					if !g.HasEdge(sub[a], sub[b]) {
						miss++
					}
				}
			}
			if miss == 0 {
				cliques++
			}
			if miss > maxMiss {
				return
			}
			// Anchored: some (k−1)-subset is a clique.
			for drop := 0; drop < k; drop++ {
				ok := true
				for a := 0; a < k && ok; a++ {
					for b := a + 1; b < k && ok; b++ {
						if a != drop && b != drop && !g.HasEdge(sub[a], sub[b]) {
							ok = false
						}
					}
				}
				if ok {
					near++
					return
				}
			}
			return
		}
		for v := start; v < n; v++ {
			sub[depth] = v
			rec(v+1, depth+1)
		}
	}
	rec(0, 0)
	return cliques, near
}

func TestCountK2IsExact(t *testing.T) {
	g := gnp(40, 0.2, 9)
	res, err := Count(context.Background(), g, Options{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.Cliques != float64(g.M()) || res.NearCliques != float64(g.M()) {
		t.Fatalf("k=2: got %+v, want exact m=%d", res, g.M())
	}
	// ⌊ε·C(2,2)⌋ = 0 for any ε < 1: slack never admits a missing edge at
	// k = 2, so near stays exactly m.
	res, err = Count(context.Background(), g, Options{K: 2, Epsilon: 0.9999, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NearCliques != float64(g.M()) {
		t.Fatalf("k=2 slack: near = %v, want m = %d", res.NearCliques, g.M())
	}
}

func TestTriangleFreeCounts(t *testing.T) {
	g := graph.FromEdges(10, [][2]int{{0, 1}, {2, 3}}) // no triangles
	res, err := Count(context.Background(), g, Options{K: 3, Epsilon: 0.4, Samples: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cliques != 0 {
		t.Fatalf("triangle-free: cliques = %v, want 0", res.Cliques)
	}
	// The near shadow is built at k−1 = 2, whose weight is exactly m —
	// every anchor is an edge. Here no edge has a ≤1-miss extension
	// (both endpoints are degree-1), so the near estimate is 0 too.
	if res.NearWeight != float64(g.M()) {
		t.Fatalf("near shadow weight = %v, want m = %d", res.NearWeight, g.M())
	}
	if res.NearCliques != 0 {
		t.Fatalf("near = %v, want 0", res.NearCliques)
	}
}

func TestCountOptionValidation(t *testing.T) {
	g := complete(5)
	bad := []Options{
		{K: 1}, {K: MaxK + 1}, {K: 3, Epsilon: -0.1}, {K: 3, Epsilon: 1},
		{K: 3, Samples: -4}, {K: 3, Confidence: 1.5},
	}
	for i, o := range bad {
		if _, err := Count(context.Background(), g, o); err == nil {
			t.Errorf("case %d: Count(%+v) accepted invalid options", i, o)
		}
	}
}

func TestBuildBudgetError(t *testing.T) {
	g := complete(30)
	_, err := Count(context.Background(), g, Options{K: 5, Samples: 8, Seed: 1, MaxLeafInts: 4})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestCountHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := gnp(120, 0.3, 11)
	if _, err := Count(ctx, g, Options{K: 4, Samples: 1 << 16, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSampleReturnsRealCliquesDeterministically(t *testing.T) {
	g := planted(80, 8, 13)
	opts := Options{K: 4, Samples: 512, Seed: 42}
	a, err := Sample(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("no cliques sampled from a graph with a planted K8")
	}
	for _, c := range a {
		if len(c) != 4 {
			t.Fatalf("sampled set %v has size %d, want 4", c, len(c))
		}
		for i := 0; i < len(c); i++ {
			if i > 0 && c[i-1] >= c[i] {
				t.Fatalf("sampled set %v not sorted ascending", c)
			}
			for j := i + 1; j < len(c); j++ {
				if !g.HasEdge(c[i], c[j]) {
					t.Fatalf("sampled set %v is not a clique: missing {%d,%d}", c, c[i], c[j])
				}
			}
		}
	}
	b, err := Sample(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("two identical Sample runs disagree: %d vs %d cliques", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("sample %d differs between runs: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

func TestHoeffdingHalfWidthShrinks(t *testing.T) {
	if h1, h2 := hoeffding(100, 0.99), hoeffding(10000, 0.99); h2 >= h1 {
		t.Fatalf("half-width did not shrink with samples: %v -> %v", h1, h2)
	}
	if !(hoeffding(100, 0.999) > hoeffding(100, 0.9)) {
		t.Fatal("higher confidence must widen the bound")
	}
	if math.IsNaN(hoeffding(1, 0.5)) {
		t.Fatal("NaN half-width")
	}
}
