package shadow

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"nearclique/internal/congest"
	"nearclique/internal/flight"
	"nearclique/internal/graph"
)

// MaxK caps the clique size: beyond it binomial weights lose integer
// precision and the shadow blows up combinatorially anyway.
const MaxK = 32

// Options configures Count and Sample. The zero value is not usable;
// go through nearclique.WithCliqueSize/WithSamples/WithConfidence or
// fill K and accept the defaults documented per field.
type Options struct {
	// K is the clique size to count (required, 2 ≤ K ≤ MaxK).
	K int
	// Epsilon is the near-clique slack: a k-set is an anchored
	// (k,ε)-near-clique when it misses at most ⌊ε·C(k,2)⌋ edges and
	// contains at least one (k−1)-clique. 0 counts exact cliques only.
	Epsilon float64
	// Samples is the number of estimator draws (default 4096).
	Samples int
	// Confidence is the coverage 1−δ of the reported error bounds
	// (default 0.99).
	Confidence float64
	// Seed keys every counter-based RNG stream; same seed ⇒ bit-identical
	// estimates at any parallelism.
	Seed int64
	// Parallelism bounds sampling workers (0 = GOMAXPROCS). The result
	// does not depend on it.
	Parallelism int
	// MaxLeafInts bounds the shadow leaf arena (0 = DefaultMaxLeafInts).
	MaxLeafInts int
	// Flight, when non-nil, receives phase events for shadow build and
	// sampling (phases "shadow-build", "shadow-sample").
	Flight *flight.Recorder
}

func (o *Options) withDefaults() (Options, error) {
	v := *o
	if v.K < 2 || v.K > MaxK {
		return v, fmt.Errorf("shadow: clique size %d out of range [2, %d]", v.K, MaxK)
	}
	if v.Epsilon < 0 || v.Epsilon >= 1 {
		return v, fmt.Errorf("shadow: epsilon %v out of range [0, 1)", v.Epsilon)
	}
	if v.Samples == 0 {
		v.Samples = 4096
	}
	if v.Samples < 1 {
		return v, fmt.Errorf("shadow: samples %d < 1", v.Samples)
	}
	if v.Confidence == 0 {
		v.Confidence = 0.99
	}
	if v.Confidence <= 0 || v.Confidence >= 1 {
		return v, fmt.Errorf("shadow: confidence %v out of range (0, 1)", v.Confidence)
	}
	if v.Parallelism <= 0 {
		v.Parallelism = runtime.GOMAXPROCS(0)
	}
	return v, nil
}

// Result is a completed count. Estimates are unbiased; the error bounds
// are Hoeffding at the configured confidence — exact for Cliques (the
// per-sample statistic is an indicator), empirical-range for
// NearCliques (see DESIGN.md §15 for the caveat). Exact is set when the
// counts required no sampling (k = 2, or an empty shadow).
type Result struct {
	K          int     `json:"k"`
	Epsilon    float64 `json:"epsilon"`
	Samples    int     `json:"samples"`
	Confidence float64 `json:"confidence"`

	Cliques         float64 `json:"cliques"`
	CliquesErrBound float64 `json:"cliques_err_bound"`
	CliqueHits      int64   `json:"clique_hits"`

	NearCliques  float64 `json:"near_cliques"`
	NearErrBound float64 `json:"near_err_bound"`
	NearHits     int64   `json:"near_hits"`

	CliqueLeaves int     `json:"clique_leaves"`
	CliqueWeight float64 `json:"clique_weight"`
	NearLeaves   int     `json:"near_leaves"`
	NearWeight   float64 `json:"near_weight"`

	Exact bool `json:"exact"`
}

// maxMissFor returns ⌊ε·C(k,2)⌋, the missing-edge budget of an anchored
// (k,ε)-near-clique. The 1e-9 nudge keeps products like 0.7·10 from
// flooring one short of the rational value.
func maxMissFor(k int, eps float64) int {
	return int(math.Floor(eps*binom(k, 2) + 1e-9))
}

// hoeffding returns the half-width t with P(|mean−μ| ≥ t) ≤ δ for s
// iid samples in [0,1]: sqrt(ln(2/δ) / 2s).
func hoeffding(s int, confidence float64) float64 {
	delta := 1 - confidence
	return math.Sqrt(math.Log(2/delta) / (2 * float64(s)))
}

// Count estimates the number of k-cliques and anchored (k,ε)-near-cliques
// of g. The clique estimate samples a Turán shadow built at k; the near
// estimate (when ε > 0) samples a second shadow built at k−1, drawing
// uniform (k−1)-cliques and summing 1/d(S) over their near one-vertex
// extensions S, where d(S) is the number of (k−1)-cliques inside S — the
// weighting that counts each near-clique exactly once however many
// anchors it contains.
func Count(ctx context.Context, g *graph.Graph, o Options) (*Result, error) {
	opt, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	res := &Result{K: opt.K, Epsilon: opt.Epsilon, Samples: opt.Samples, Confidence: opt.Confidence}
	maxMiss := maxMissFor(opt.K, opt.Epsilon)

	if opt.K == 2 {
		// Every edge is a 2-clique, and ⌊ε·C(2,2)⌋ = 0 for any ε < 1, so
		// the near count coincides: both are exactly m.
		res.Cliques = float64(g.M())
		res.NearCliques = res.Cliques
		res.Exact = true
		return res, nil
	}

	d, err := buildTimed(ctx, g, opt.K, &opt)
	if err != nil {
		return nil, err
	}
	res.CliqueLeaves = len(d.leaves)
	res.CliqueWeight = d.weight
	if d.weight == 0 {
		res.Exact = maxMiss == 0 // near count still needs its own shadow
	} else {
		xs, err := sampleAll(ctx, d, &opt, passClique, maxMiss)
		if err != nil {
			return nil, err
		}
		hits := int64(0)
		for _, x := range xs {
			if x != 0 {
				hits++
			}
		}
		res.CliqueHits = hits
		res.Cliques = d.weight * float64(hits) / float64(opt.Samples)
		res.CliquesErrBound = d.weight * hoeffding(opt.Samples, opt.Confidence)
	}

	if maxMiss == 0 {
		// ε-slack admits no missing edges: near ≡ clique.
		res.NearCliques = res.Cliques
		res.NearErrBound = res.CliquesErrBound
		res.NearHits = res.CliqueHits
		res.NearLeaves = res.CliqueLeaves
		res.NearWeight = res.CliqueWeight
		return res, nil
	}

	nd, err := buildTimed(ctx, g, opt.K-1, &opt)
	if err != nil {
		return nil, err
	}
	res.NearLeaves = len(nd.leaves)
	res.NearWeight = nd.weight
	if nd.weight == 0 {
		// No (k−1)-cliques at all ⇒ nothing can be anchored.
		res.Exact = res.CliqueWeight == 0
		return res, nil
	}
	xs, err := sampleAll(ctx, nd, &opt, passNear, maxMiss)
	if err != nil {
		return nil, err
	}
	// Sequential index-order reduction: float addition is not
	// associative, and this sum is part of the bit-reproducibility
	// contract across GOMAXPROCS and batch shapes.
	sum, maxX := 0.0, 0.0
	hits := int64(0)
	for _, x := range xs {
		sum += x
		if x > 0 {
			hits++
		}
		if x > maxX {
			maxX = x
		}
	}
	res.NearHits = hits
	res.NearCliques = nd.weight * sum / float64(opt.Samples)
	res.NearErrBound = nd.weight * maxX * hoeffding(opt.Samples, opt.Confidence)
	return res, nil
}

// Sample draws o.Samples times from the k-shadow and returns the draws
// that landed on k-cliques, each sorted ascending — uniform over the
// k-cliques of g, deterministic at fixed seed (the draws reuse the
// clique-pass streams, so Sample sees exactly Count's coin flips).
func Sample(ctx context.Context, g *graph.Graph, o Options) ([][]int, error) {
	opt, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	if opt.K == 2 {
		return nil, fmt.Errorf("shadow: sampling needs k ≥ 3 (2-cliques are just edges)")
	}
	d, err := buildTimed(ctx, g, opt.K, &opt)
	if err != nil {
		return nil, err
	}
	if d.weight == 0 {
		return nil, nil
	}
	s := newSampler(d)
	var out [][]int
	for i := 0; i < opt.Samples; i++ {
		if i&0xff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		lf, sub := s.draw(opt.Seed, passClique, i)
		if !s.isClique(sub) {
			continue
		}
		clique := make([]int, 0, d.t)
		pre := d.pre[lf.preOff : lf.preOff+int32(d.t)-lf.ell]
		for _, v := range pre {
			clique = append(clique, int(v))
		}
		for _, v := range sub {
			clique = append(clique, int(v))
		}
		sort.Ints(clique)
		out = append(out, clique)
	}
	return out, nil
}

// buildTimed wraps build with the flight-recorder phase event. No wall
// clock: the phase carries structural counters (leaves, refinements,
// arena bytes); wall time belongs to the layers above (nclint
// transcriptScope forbids clock reads here).
func buildTimed(ctx context.Context, g *graph.Graph, t int, opt *Options) (*dag, error) {
	d, err := build(ctx, g, t, opt.MaxLeafInts)
	if err != nil {
		return nil, err
	}
	if opt.Flight != nil {
		ord := opt.Flight.BeginPhase("shadow-build")
		opt.Flight.Record(flight.Event{
			Kind:     flight.KindPhase,
			Phase:    ord,
			Round:    int64(t),
			Frontier: int32(len(d.leaves)),
			Frames:   int64(d.refined),
			Bytes:    4 * int64(len(d.sets)+len(d.pre)),
		})
	}
	return d, nil
}

// Stream passes separate the clique and near estimators' randomness so
// the two shadows never share coins even at equal sample indices.
const (
	passClique = 1
	passNear   = 2
)

// sampler is per-worker draw scratch over one dag.
type sampler struct {
	d   *dag
	idx []int32 // Fisher–Yates scratch, sized to the largest leaf
	// near-extension scratch, allocated lazily (n-sized):
	cnt     []int32 // neighbors-in-T count per vertex
	inT     []bool
	touched []int32
}

func newSampler(d *dag) *sampler {
	maxLen := int32(0)
	for _, lf := range d.leaves {
		if lf.setLen > maxLen {
			maxLen = lf.setLen
		}
	}
	return &sampler{d: d, idx: make([]int32, maxLen)}
}

// draw picks a leaf with probability proportional to its weight and a
// uniform ℓ-subset of its set, using the counter stream keyed by
// (seed, pass, sample index) — addressable coins, no shared state.
func (s *sampler) draw(seed int64, pass, i int) (leaf, []int32) {
	rng := congest.NewNodeRand(seed, int64(pass)<<40|int64(i))
	li := sort.SearchFloat64s(s.d.cum, rng.Float64()*s.d.weight)
	if li >= len(s.d.leaves) {
		li = len(s.d.leaves) - 1 // Float64 can hit 1.0·weight exactly
	}
	lf := s.d.leaves[li]
	set := s.d.sets[lf.setOff : lf.setOff+lf.setLen]
	ids := s.idx[:len(set)]
	for j := range ids {
		ids[j] = int32(j)
	}
	ell := int(lf.ell)
	for j := 0; j < ell; j++ {
		k := j + rng.Intn(len(ids)-j)
		ids[j], ids[k] = ids[k], ids[j]
	}
	sub := make([]int32, ell)
	for j := 0; j < ell; j++ {
		sub[j] = set[ids[j]]
	}
	return lf, sub
}

// isClique tests all pairs of the drawn subset. Prefix–subset and
// prefix–prefix edges hold by shadow construction, so the subset's own
// pairs are the whole test.
func (s *sampler) isClique(sub []int32) bool {
	for a := 0; a < len(sub); a++ {
		for b := a + 1; b < len(sub); b++ {
			if !s.d.g.HasEdge(int(sub[a]), int(sub[b])) {
				return false
			}
		}
	}
	return true
}

// nearX computes the near-pass statistic for one uniform (k−1)-clique T
// (prefix ∪ subset): Σ over near one-vertex extensions S = T ∪ {v} of
// 1/d(S). d(S) — the number of (k−1)-cliques inside S — follows from
// cnt = |Γ(v) ∩ T| alone: cnt = |T| makes S a k-clique (d = k), cnt =
// |T|−1 leaves exactly one second anchor (d = 2), anything lower leaves
// T alone (d = 1).
func (s *sampler) nearX(lf leaf, sub []int32, maxMiss int) float64 {
	d := s.d
	n := d.g.N()
	if s.cnt == nil {
		s.cnt = make([]int32, n)
		s.inT = make([]bool, n)
	}
	km1 := d.t // the near dag is built at t = k−1
	pre := d.pre[lf.preOff : lf.preOff+int32(km1)-lf.ell]

	mark := func(v int32) { s.inT[v] = true }
	for _, v := range pre {
		mark(v)
	}
	for _, v := range sub {
		mark(v)
	}
	count := func(v int32) {
		for _, w := range d.g.Neighbors(int(v)) {
			if s.inT[w] {
				continue
			}
			if s.cnt[w] == 0 {
				s.touched = append(s.touched, w)
			}
			s.cnt[w]++
		}
	}
	for _, v := range pre {
		count(v)
	}
	for _, v := range sub {
		count(v)
	}

	x := 0.0
	for _, v := range s.touched {
		cnt := int(s.cnt[v])
		if km1-cnt > maxMiss {
			continue
		}
		switch cnt {
		case km1:
			x += 1 / float64(km1+1)
		case km1 - 1:
			x += 0.5
		default:
			x++
		}
	}
	if km1 <= maxMiss {
		// Vertices with no edge into T still extend it within budget;
		// they all have d = 1, so they contribute arithmetically.
		x += float64(n - km1 - len(s.touched))
	}
	for _, v := range s.touched {
		s.cnt[v] = 0
	}
	s.touched = s.touched[:0]
	for _, v := range pre {
		s.inT[v] = false
	}
	for _, v := range sub {
		s.inT[v] = false
	}
	return x
}

// sampleAll runs the estimator for every sample index, in parallel
// workers claiming disjoint chunks, each result stored at its index —
// the caller reduces sequentially, so the output is a pure function of
// (dag, seed, pass), independent of worker count and chunking.
func sampleAll(ctx context.Context, d *dag, opt *Options, pass, maxMiss int) ([]float64, error) {
	xs := make([]float64, opt.Samples)
	hits := int64(0) // flight-only aggregate; order-independent
	const chunk = 64
	var next atomic.Int64
	workers := opt.Parallelism
	if workers > opt.Samples {
		workers = opt.Samples
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := newSampler(d)
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= opt.Samples {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				hi := lo + chunk
				if hi > opt.Samples {
					hi = opt.Samples
				}
				h := int64(0)
				for i := lo; i < hi; i++ {
					lf, sub := s.draw(opt.Seed, pass, i)
					if !s.isClique(sub) {
						continue
					}
					h++
					if pass == passNear {
						xs[i] = s.nearX(lf, sub, maxMiss)
					} else {
						xs[i] = 1
					}
				}
				atomic.AddInt64(&hits, h)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if opt.Flight != nil {
		ord := opt.Flight.BeginPhase("shadow-sample")
		opt.Flight.Record(flight.Event{
			Kind:     flight.KindPhase,
			Phase:    ord,
			Round:    int64(d.t),
			Frontier: int32(min(opt.Samples, 1<<31-1)),
			Frames:   atomic.LoadInt64(&hits),
		})
	}
	return xs, nil
}
