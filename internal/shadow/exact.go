package shadow

import (
	"fmt"
	"math"

	"nearclique/internal/graph"
)

// CountExact enumerates the k-clique and anchored (k,ε)-near-clique
// counts by brute force over the degeneracy DAG — the conformance
// oracle for the sampling estimator. Exponential in k; meant for the
// small-graph suite (k ≤ 7, n ≤ a few hundred), not production.
//
// The near count uses the same 1/d(S) identity the estimator does, in
// the exact direction: summing 1/d(S) over every ((k−1)-clique T,
// near extension v) pair hits each anchored near-clique S exactly d(S)
// times with weight 1/d(S), so the total is the integer count (the
// return value is rounded to absorb float dust).
func CountExact(g *graph.Graph, k int, eps float64) (cliques, near float64, err error) {
	if k < 2 || k > MaxK {
		return 0, 0, fmt.Errorf("shadow: clique size %d out of range [2, %d]", k, MaxK)
	}
	if eps < 0 || eps >= 1 {
		return 0, 0, fmt.Errorf("shadow: epsilon %v out of range [0, 1)", eps)
	}
	maxMiss := maxMissFor(k, eps)
	if k == 2 {
		cliques = float64(g.M())
		return cliques, cliques, nil
	}

	n := g.N()
	count := 0.0
	forEachClique(g, k, func([]int32) { count++ })
	cliques = count

	if maxMiss == 0 {
		return cliques, cliques, nil
	}
	sum := 0.0
	km1 := k - 1
	forEachClique(g, km1, func(t []int32) {
		for v := 0; v < n; v++ {
			inT := false
			cnt := 0
			for _, u := range t {
				if int(u) == v {
					inT = true
					break
				}
				if g.HasEdge(v, int(u)) {
					cnt++
				}
			}
			if inT || km1-cnt > maxMiss {
				continue
			}
			switch cnt {
			case km1:
				sum += 1 / float64(k)
			case km1 - 1:
				sum += 0.5
			default:
				sum++
			}
		}
	})
	return cliques, math.Round(sum), nil
}

// forEachClique invokes fn for every j-clique of g (j ≥ 1), vertices in
// ascending index order, so each clique is visited exactly once (the
// ascending sequence is its canonical form). The callback's slice is
// reused; copy it to retain.
func forEachClique(g *graph.Graph, j int, fn func([]int32)) {
	n := g.N()
	if n == 0 || j < 1 {
		return
	}
	cur := make([]int32, 0, j)
	var extend func(cand []int32)
	extend = func(cand []int32) {
		for i, v := range cand {
			cur = append(cur, v)
			if len(cur) == j {
				fn(cur)
			} else {
				// Narrow to later candidates adjacent to v: cand already
				// holds only common neighbors of cur's earlier members.
				var nxt []int32
				for _, w := range cand[i+1:] {
					if g.HasEdge(int(v), int(w)) {
						nxt = append(nxt, w)
					}
				}
				extend(nxt)
			}
			cur = cur[:len(cur)-1]
		}
	}
	all := make([]int32, n)
	for v := range all {
		all[v] = int32(v)
	}
	extend(all)
}
