package shadow

import (
	"context"
	"fmt"
	"math"
	"testing"

	"nearclique/internal/graph"
)

// TestConformanceAgainstExactEnumeration is the ISSUE-10 acceptance
// suite: on a grid of small graphs (k ≤ 5, n ≤ 200) the sampled
// estimates must land within the reported error bound of the exact
// counts, and be bit-identical across GOMAXPROCS-style parallelism and
// sequential vs. batched sampling. Everything is seeded, so this test
// is deterministic: a failure is a real estimator or determinism bug,
// never flake.
func TestConformanceAgainstExactEnumeration(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp-60-0.2", gnp(60, 0.2, 7)},
		{"gnp-120-0.1", gnp(120, 0.1, 8)},
		{"gnp-200-0.08", gnp(200, 0.08, 9)},
		{"planted-100-k9", planted(100, 9, 10)},
		{"complete-18", complete(18)},
		{"sparse-pairs", graph.FromEdges(50, [][2]int{{0, 1}, {2, 3}, {3, 4}, {4, 2}})},
	}
	for _, tc := range graphs {
		for k := 3; k <= 5; k++ {
			for _, eps := range []float64{0, 0.25} {
				t.Run(fmt.Sprintf("%s/k%d/eps%v", tc.name, k, eps), func(t *testing.T) {
					exactC, exactN, err := CountExact(tc.g, k, eps)
					if err != nil {
						t.Fatal(err)
					}
					opts := Options{K: k, Epsilon: eps, Samples: 30000, Confidence: 0.999, Seed: 17}
					res, err := Count(context.Background(), tc.g, opts)
					if err != nil {
						t.Fatal(err)
					}
					if err := withinBound(res.Cliques, exactC, res.CliquesErrBound); err != nil {
						t.Errorf("clique estimate: %v", err)
					}
					if err := withinBound(res.NearCliques, exactN, res.NearErrBound); err != nil {
						t.Errorf("near estimate: %v", err)
					}

					// Bit-reproducibility: one worker vs. four, and a
					// ragged worker count that splits chunks differently.
					for _, par := range []int{1, 3, 4} {
						o2 := opts
						o2.Parallelism = par
						r2, err := Count(context.Background(), tc.g, o2)
						if err != nil {
							t.Fatal(err)
						}
						if *r2 != *res {
							t.Errorf("parallelism %d changed the result:\n  %+v\nvs %+v", par, r2, res)
						}
					}
				})
			}
		}
	}
}

func withinBound(est, exact, bound float64) error {
	if math.IsNaN(est) || math.IsInf(est, 0) {
		return fmt.Errorf("estimate %v is not finite", est)
	}
	if diff := math.Abs(est - exact); diff > bound+1e-9 {
		return fmt.Errorf("|%v − %v| = %v exceeds bound %v", est, exact, diff, bound)
	}
	return nil
}

// TestNearReducesToCliquesAtZeroEps pins the ε = 0 identity the server
// fast-path relies on: no second shadow, near == clique bit for bit.
func TestNearReducesToCliquesAtZeroEps(t *testing.T) {
	g := gnp(80, 0.15, 21)
	res, err := Count(context.Background(), g, Options{K: 4, Samples: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.NearCliques != res.Cliques || res.NearErrBound != res.CliquesErrBound {
		t.Fatalf("eps=0: near (%v ± %v) != cliques (%v ± %v)",
			res.NearCliques, res.NearErrBound, res.Cliques, res.CliquesErrBound)
	}
}

// TestSeedChangesEstimateButNotExpectation sanity-checks that distinct
// seeds draw distinct sample paths (the streams are really keyed) while
// both stay inside their bounds.
func TestSeedChangesEstimateButNotExpectation(t *testing.T) {
	g := gnp(100, 0.12, 23)
	exactC, _, err := CountExact(g, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exactC == 0 {
		t.Skip("generator produced no 4-cliques; widen p")
	}
	a, err := Count(context.Background(), g, Options{K: 4, Samples: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Count(context.Background(), g, Options{K: 4, Samples: 20000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.CliqueHits == b.CliqueHits {
		t.Log("two seeds produced identical hit counts (possible but unlikely); not failing")
	}
	for _, r := range []*Result{a, b} {
		if err := withinBound(r.Cliques, exactC, r.CliquesErrBound); err != nil {
			t.Errorf("seed run: %v", err)
		}
	}
}
