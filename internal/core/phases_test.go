package core

import (
	"fmt"
	"testing"

	"nearclique/internal/bitset"
	"nearclique/internal/congest"
	"nearclique/internal/gen"
	"nearclique/internal/graph"
)

// newTestDriver builds a driver exactly as Find does, for white-box
// stepping through phases.
func newTestDriver(t *testing.T, g *graph.Graph, opts Options) *driver {
	t.Helper()
	opts, err := opts.validated(g.N())
	if err != nil {
		t.Fatal(err)
	}
	d := &driver{g: g, opts: opts}
	frameBits := congest.DefaultFrameBits(g.N())
	d.wire = newWire(g.N(), opts.Versions, frameBits)
	d.nodes = make([]*node, g.N())
	d.net = congest.NewNetwork(g, congest.Options{Seed: opts.Seed, FrameBits: frameBits},
		func(ctx *congest.Context) congest.Proc {
			nd := newNode(d, ctx)
			d.nodes[ctx.Index()] = nd
			return nd
		})
	return d
}

func (d *driver) step(t *testing.T, ph int) {
	t.Helper()
	d.phase = ph
	if err := d.net.RunPhase(fmt.Sprintf("test/%s", phaseNames[ph])); err != nil {
		t.Fatalf("phase %s: %v", phaseNames[ph], err)
	}
}

// sampleSet recomputes S from node state.
func (d *driver) sampleSet(v int) *bitset.Set {
	s := bitset.New(d.g.N())
	for i, nd := range d.nodes {
		if nd.vers[v] != nil && nd.vers[v].inS {
			s.Add(i)
		}
	}
	return s
}

// TestPhaseSample: membership matches an independent coin replay and
// sampled neighbors are learned correctly.
func TestPhaseSample(t *testing.T) {
	g := gen.ErdosRenyi(80, 0.15, 3)
	d := newTestDriver(t, g, Options{Epsilon: 0.25, P: 0.2, Seed: 11})
	d.step(t, phaseSample)

	inS := d.sampleSet(0)
	if inS.Count() == 0 {
		t.Skip("empty sample; pick another seed")
	}
	for v, nd := range d.nodes {
		vs := nd.vers[0]
		// sNbrs must be exactly the sampled neighbors, ascending.
		want := []int32{}
		for _, w := range g.Neighbors(v) {
			if inS.Contains(int(w)) {
				want = append(want, w)
			}
		}
		if len(vs.sNbrs) != len(want) {
			t.Fatalf("node %d: sNbrs %v, want %v", v, vs.sNbrs, want)
		}
		for i := range want {
			if vs.sNbrs[i] != want[i] {
				t.Fatalf("node %d: sNbrs %v, want %v", v, vs.sNbrs, want)
			}
		}
	}
}

// TestPhaseBFSTree: after bfs+claim, parents form spanning trees of the
// components of G[S], rooted at the minimum-protocol-ID member, with BFS
// distances.
func TestPhaseBFSTree(t *testing.T) {
	g := gen.PlantedClique(100, 30, 0.05, 7).Graph
	d := newTestDriver(t, g, Options{Epsilon: 0.25, ExpectedSample: 8, Seed: 5})
	d.step(t, phaseSample)
	d.step(t, phaseBFS)
	d.step(t, phaseClaim)

	inS := d.sampleSet(0)
	ids := congest.PermutedIDs(g.N(), 5)
	for _, comp := range g.ComponentsOf(inS) {
		// Expected root: member with minimum protocol ID.
		rootIdx := comp[0]
		for _, m := range comp {
			if ids[m] < ids[rootIdx] {
				rootIdx = m
			}
		}
		compSet := bitset.FromIndices(g.N(), comp)
		for _, m := range comp {
			vs := d.nodes[m].vers[0]
			if vs.rootIdx != int32(rootIdx) {
				t.Fatalf("node %d elected root %d, want %d", m, vs.rootIdx, rootIdx)
			}
			dist := g.BFSDistances(rootIdx, compSet)
			if int(vs.dist) != dist[m] {
				t.Fatalf("node %d: dist %d, want BFS distance %d", m, vs.dist, dist[m])
			}
			if m == rootIdx {
				if vs.parent != noParent {
					t.Fatalf("root %d has parent %d", m, vs.parent)
				}
			} else {
				// Parent is a sampled neighbor one hop closer to the root.
				if !inS.Contains(int(vs.parent)) || !g.HasEdge(m, int(vs.parent)) {
					t.Fatalf("node %d: invalid parent %d", m, vs.parent)
				}
				if pd := dist[vs.parent]; pd != dist[m]-1 {
					t.Fatalf("node %d: parent at distance %d, self at %d", m, pd, dist[m])
				}
				// And claims were received: m must appear in its parent's
				// children.
				if !containsInt32(d.nodes[vs.parent].vers[0].children, int32(m)) {
					t.Fatalf("node %d missing from parent %d's children", m, vs.parent)
				}
			}
		}
	}
}

// TestPhaseComponentDiscovery: after compUp+compDown every sampled node
// knows its exact component, sorted.
func TestPhaseComponentDiscovery(t *testing.T) {
	g := gen.ErdosRenyi(120, 0.08, 9)
	d := newTestDriver(t, g, Options{Epsilon: 0.25, ExpectedSample: 10, Seed: 8})
	for _, ph := range []int{phaseSample, phaseBFS, phaseClaim, phaseCompUp, phaseCompDown} {
		d.step(t, ph)
	}
	inS := d.sampleSet(0)
	for _, comp := range g.ComponentsOf(inS) {
		for _, m := range comp {
			got := d.nodes[m].vers[0].compMembers
			if len(got) != len(comp) {
				t.Fatalf("node %d sees %d members, want %d", m, len(got), len(comp))
			}
			for i := range comp {
				if int(got[i]) != comp[i] {
					t.Fatalf("node %d members %v, want %v", m, got, comp)
				}
			}
		}
	}
}

// TestPhaseShareAndClaim: non-sampled participants learn each adjacent
// component's membership and claim their smallest sampled neighbor.
func TestPhaseShareAndClaim(t *testing.T) {
	g := gen.PlantedClique(90, 27, 0.05, 21).Graph
	d := newTestDriver(t, g, Options{Epsilon: 0.25, ExpectedSample: 7, Seed: 2})
	for _, ph := range []int{phaseSample, phaseBFS, phaseClaim, phaseCompUp, phaseCompDown,
		phaseShare, phaseLeafClaim} {
		d.step(t, ph)
	}
	inS := d.sampleSet(0)
	comps := g.ComponentsOf(inS)
	for v, nd := range d.nodes {
		if inS.Contains(v) {
			continue
		}
		vs := nd.vers[0]
		// Expected adjacent components.
		adjComps := 0
		for _, comp := range comps {
			sNbrsHere := []int32{}
			for _, w := range g.Neighbors(v) {
				if inS.Contains(int(w)) && containsInt(comp, int(w)) {
					sNbrsHere = append(sNbrsHere, w)
				}
			}
			if len(sNbrsHere) == 0 {
				continue
			}
			adjComps++
			// Locate the view via any member's root.
			root := d.nodes[comp[0]].vers[0].rootIdx
			cv := vs.comps[root]
			if cv == nil {
				t.Fatalf("node %d missing view for component rooted at %d", v, root)
			}
			if len(cv.members) != len(comp) {
				t.Fatalf("node %d: view has %d members, want %d", v, len(cv.members), len(comp))
			}
			min := sNbrsHere[0]
			for _, s := range sNbrsHere[1:] {
				if s < min {
					min = s
				}
			}
			if cv.parent != min {
				t.Fatalf("node %d claimed %d, want smallest S-neighbor %d", v, cv.parent, min)
			}
			if !containsInt32(d.nodes[min].vers[0].comps[root].claimants, int32(v)) {
				t.Fatalf("node %d missing from %d's claimants", v, min)
			}
		}
		if adjComps != len(vs.comps) {
			t.Fatalf("node %d has %d views, want %d", v, len(vs.comps), adjComps)
		}
	}
}

// TestPhaseKAndT: after the exploration stage, the root's kcounts and
// every participant's tbits match the graph oracle restricted to the
// voter set (= the unrestricted values, per DESIGN.md §2).
func TestPhaseKAndT(t *testing.T) {
	g := gen.PlantedClique(80, 26, 0.06, 31).Graph
	eps := 0.25
	d := newTestDriver(t, g, Options{Epsilon: eps, ExpectedSample: 7, Seed: 6})
	for _, ph := range []int{phaseSample, phaseBFS, phaseClaim, phaseCompUp, phaseCompDown,
		phaseShare, phaseLeafClaim, phaseKBits, phaseKSum, phaseKDown, phaseTSum} {
		d.step(t, ph)
	}
	inS := d.sampleSet(0)
	for _, comp := range g.ComponentsOf(inS) {
		rootIdx := int(d.nodes[comp[0]].vers[0].rootIdx)
		cv := d.nodes[rootIdx].vers[0].comps[int32(rootIdx)]
		if cv == nil || cv.kcounts == nil {
			t.Fatalf("root %d has no kcounts", rootIdx)
		}
		members := make([]int32, len(comp))
		for i, m := range comp {
			members[i] = int32(m)
		}
		k := len(comp)
		for b := 1; b < 1<<uint(k) && b < 1<<12; b++ {
			x := bitset.New(g.N())
			for i := 0; i < k; i++ {
				if b&(1<<uint(i)) != 0 {
					x.Add(int(members[i]))
				}
			}
			want := g.K(x, 2*eps*eps).Count()
			if int(cv.kcounts[b]) != want {
				t.Fatalf("root %d: kcounts[%b]=%d, oracle %d", rootIdx, b, cv.kcounts[b], want)
			}
			// T bits at every participant.
			oracleT := g.T(x, eps)
			for v, nd := range d.nodes {
				vs := nd.vers[0]
				view := vs.comps[int32(rootIdx)]
				if view == nil || view.tbits == nil {
					continue
				}
				if view.tbits.Contains(b) != oracleT.Contains(v) {
					t.Fatalf("node %d subset %b: tbit %v, oracle %v",
						v, b, view.tbits.Contains(b), oracleT.Contains(v))
				}
			}
		}
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
