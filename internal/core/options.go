// Package core implements Algorithm DistNearClique of Brakerski &
// Patt-Shamir, "Distributed Discovery of Large Near-Cliques" (PODC 2009),
// both as a faithful CONGEST-model distributed protocol (Find) and as a
// centralized reference implementation that replays the identical coin
// flips and tie-breaks (FindSequential). Given a graph containing an
// ε³-near clique D of size ≥ δn, the algorithm outputs, with constant
// probability, a disjoint collection of near-cliques at least one of which
// is an O(ε/δ)-near clique of size (1−O(ε))|D| (Theorem 5.7).
//
// The distributed protocol follows the paper's three stages — sampling,
// exploration, decision — refined into thirteen quiescence-delimited
// phases; see DESIGN.md §3 for the step-by-step mapping.
package core

import (
	"errors"
	"fmt"
	"sort"

	"nearclique/internal/congest"
	"nearclique/internal/flight"
	"nearclique/internal/graph"
	"nearclique/internal/refine"
)

// Default bounds.
const (
	// DefaultMaxComponentSize caps |Si|: the exploration stage enumerates
	// all 2^|Si| subsets, so components beyond ~20 are infeasible in both
	// time and (per the paper) round complexity.
	DefaultMaxComponentSize = 16
	// HardMaxComponentSize is the absolute cap accepted via Options.
	HardMaxComponentSize = 22
)

// ErrComponentTooLarge is returned when a sampled component of G[S]
// exceeds MaxComponentSize (the exploration stage would need 2^|Si|
// subsets). Retry with a smaller sampling probability.
var ErrComponentTooLarge = errors.New("core: sampled component exceeds MaxComponentSize")

// ErrRoundLimit re-exports the deterministic time-bound wrapper error.
var ErrRoundLimit = congest.ErrRoundLimit

// Options configures a run of DistNearClique.
type Options struct {
	// Epsilon is the near-clique parameter ε. Must lie in (0, 0.5); the
	// paper's analysis assumes ε < 1/3.
	Epsilon float64
	// P is the sampling probability p. Exactly one of P and ExpectedSample
	// should be set; ExpectedSample = s sets P = s/n.
	P float64
	// ExpectedSample is the expected sample size s = p·n.
	ExpectedSample float64
	// Seed drives every coin flip. Identical seeds give identical runs,
	// distributed or sequential.
	Seed int64
	// Versions is the boosting parameter λ of Section 4.1: that many
	// independent sampling+exploration stages run before a single decision
	// stage. 0 or 1 means the base algorithm.
	Versions int
	// MinSize disqualifies committed candidates smaller than this (the
	// paper's footnote: small sets can be disqualified when a lower bound
	// on the dense subgraph is known). 0 disables.
	MinSize int
	// MaxRounds bounds total communication rounds (Section 4.1's
	// deterministic running-time wrapper); Find returns ErrRoundLimit with
	// all-⊥ outputs when exceeded. 0 disables.
	MaxRounds int
	// MaxComponentSize aborts the run when a component of G[S] exceeds
	// this size (see ErrComponentTooLarge). 0 means the default.
	MaxComponentSize int
	// Parallelism bounds simulator worker goroutines; 0 means GOMAXPROCS.
	Parallelism int
	// Engine selects the simulator executor (default: the sharded
	// flat-buffer engine; congest.EngineLegacy is the reference engine).
	// Outputs are bit-identical either way; only speed differs.
	Engine congest.Engine
	// Async runs the protocol on the asynchronous executor with an
	// α-synchronizer instead of the synchronous round loop (the paper's §2
	// remark via Awerbuch's synchronizer). Outputs are identical; the
	// synchronizer's message overhead appears in Metrics.Async*.
	Async bool
	// AsyncMaxDelay bounds per-message delay in virtual time units
	// (default 5); only meaningful with Async.
	AsyncMaxDelay int
	// Progress, if non-nil, is invoked synchronously after every completed
	// protocol step (Find: each quiescence-delimited phase; FindSequential:
	// each boosting version plus the decision stage). The callback must not
	// mutate the run; it exists for cancellation decisions, logging, and
	// serving-side liveness. It adds no work when nil and never changes
	// outputs.
	Progress func(Progress)
	// Flight, if non-nil, receives flight events as the run executes: the
	// CONGEST executors emit one event per round plus one summary per
	// phase, the sequential replay one summary per boosting version plus
	// the decision stage (it simulates no rounds). Purely observational —
	// attaching a recorder never changes outputs or transcripts.
	Flight *flight.Recorder
}

// Progress describes one completed protocol step, reported through
// Options.Progress. Step counts are engine-dependent: the distributed
// engines report every phase (Versions×13 exploration phases plus the two
// decision phases), the sequential reference reports one step per boosting
// version plus one for the decision stage.
type Progress struct {
	// Version is the boosting version the step belongs to, or -1 for the
	// decision-stage steps shared by all versions.
	Version int
	// Phase names the completed step (e.g. "v0/sample", "decide").
	Phase string
	// Step is the 1-based index of the completed step; Total is the number
	// of steps the run will execute.
	Step, Total int
	// Item identifies the run's graph within a batch: the public
	// SolveBatch sets it to the graph's index before forwarding the
	// event. Zero outside batch serving.
	Item int
	// Rounds and Frames are the cumulative simulator costs so far (zero on
	// the sequential path, which simulates no messages).
	Rounds, Frames int
}

func (o Options) validated(n int) (Options, error) {
	if o.Epsilon <= 0 || o.Epsilon >= 0.5 {
		return o, fmt.Errorf("core: Epsilon %v outside (0, 0.5)", o.Epsilon)
	}
	if o.P < 0 || o.P > 1 {
		return o, fmt.Errorf("core: P %v outside [0, 1]", o.P)
	}
	if o.P == 0 {
		if o.ExpectedSample <= 0 {
			return o, errors.New("core: one of P or ExpectedSample must be positive")
		}
		if n > 0 {
			o.P = o.ExpectedSample / float64(n)
			if o.P > 1 {
				o.P = 1
			}
		}
	}
	if o.Versions <= 0 {
		o.Versions = 1
	}
	if o.MaxComponentSize == 0 {
		o.MaxComponentSize = DefaultMaxComponentSize
	}
	if o.MaxComponentSize < 1 || o.MaxComponentSize > HardMaxComponentSize {
		return o, fmt.Errorf("core: MaxComponentSize %d outside [1, %d]",
			o.MaxComponentSize, HardMaxComponentSize)
	}
	return o, nil
}

// NoLabel is the ⊥ output: the node belongs to no reported near-clique.
const NoLabel = int64(-1)

// Candidate is one committed near-clique in the output.
type Candidate struct {
	// Label identifies the near-clique: the protocol ID of the root of the
	// spanning tree that produced it.
	Label int64
	// Version is the boosting version (0-based) that produced it.
	Version int
	// Members are the sorted node indices of the set (= T_ε(X(Si))).
	Members []int
	// SubsetX is the sample subset X(Si) ⊆ Si that generated the set.
	SubsetX []int
	// Density is the Definition-1 density of Members in the input graph.
	Density float64
}

// Result is the output of a run.
type Result struct {
	// Labels holds each node's output register: a candidate Label or
	// NoLabel (⊥). Nodes with equal labels are in the same near-clique.
	Labels []int64
	// Candidates are the committed near-cliques, largest first.
	Candidates []Candidate
	// SampleSizes is |S| per boosting version.
	SampleSizes []int
	// MaxComponent is the largest sampled component across versions.
	MaxComponent int
	// Metrics holds simulator costs (zero-valued for sequential runs).
	Metrics congest.Metrics
	// RefineSpec is the canonical refinement spec when the Solver ran its
	// post-pass ("" otherwise; the engines never refine — the base
	// transcript above is always the unrefined protocol output).
	RefineSpec string
	// Refined holds the refinement post-pass outputs, index-aligned with
	// Candidates; nil when refinement was not requested.
	Refined []refine.Refined
}

// Best returns the largest committed candidate, or nil if none.
func (r *Result) Best() *Candidate {
	if len(r.Candidates) == 0 {
		return nil
	}
	return &r.Candidates[0]
}

// finalizeCandidates sorts candidates (size desc, then label asc) and
// fills densities.
func finalizeCandidates(g *graph.Graph, cands []Candidate) []Candidate {
	for i := range cands {
		cands[i].Density = g.DensityOf(cands[i].Members)
	}
	sort.Slice(cands, func(i, j int) bool {
		if len(cands[i].Members) != len(cands[j].Members) {
			return len(cands[i].Members) > len(cands[j].Members)
		}
		if cands[i].Label != cands[j].Label {
			return cands[i].Label < cands[j].Label
		}
		return cands[i].Version < cands[j].Version
	})
	return cands
}
