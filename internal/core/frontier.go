package core

import (
	"context"
	"fmt"

	"nearclique/internal/congest"
	"nearclique/internal/flight"
	"nearclique/internal/frontier"
	"nearclique/internal/graph"
)

// FindFrontier runs the centralized replay on the frontier engine:
// identical coin flips, components, thresholds, and votes as
// FindSequential — its output is bit-for-bit equal on the same inputs
// (asserted by the parity suites) — but component discovery runs as
// 64-seed cluster floods with direction-optimizing waves over the CSR
// arena instead of one serial BFS per component, and voter gathering is
// one EdgeMap wave per component. Options.MaxRounds is ignored (there
// are no communication rounds); everything else behaves as in Find.
func FindFrontier(g *graph.Graph, opts Options) (*Result, error) {
	return FindFrontierContext(context.Background(), g, opts)
}

// FindFrontierContext is FindFrontier with cooperative cancellation,
// observed between boosting versions and between sampled components
// like the sequential replay. Unlike the sequential replay, the engine
// emits flight.KindRound events — one per traversal wave, carrying the
// wave's frontier population and the arena entries it examined — so
// /statz and the cost model see the engine's traversal structure; the
// simulator Metrics stay zero (nothing is simulated), keeping the
// committed transcript identical to the sequential engine's.
func FindFrontierContext(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	opts, err := opts.validated(g.N())
	if err != nil {
		return nil, err
	}
	n := g.N()
	res := &Result{
		Labels:      make([]int64, n),
		SampleSizes: make([]int, opts.Versions),
	}
	for i := range res.Labels {
		res.Labels[i] = NoLabel
	}

	scratch := getSeqScratch()
	defer putSeqScratch(scratch)

	ft := newFlightTrace(opts.Flight)
	comps, err := collectComps(ctx, g, opts, scratch, ft, res, func(sc *seqComp) {
		sc.finish(g, opts.Epsilon, opts.MinSize)
	})
	if err != nil {
		return res, err
	}

	ft.begin("decide")
	decideAndCommit(g, opts, comps, res)
	ft.end(len(comps))
	if opts.Progress != nil {
		opts.Progress(Progress{
			Version: -1, Phase: "decide",
			Step: opts.Versions + 1, Total: opts.Versions + 1,
		})
	}
	return res, nil
}

// collectComps runs the ε-invariant half of a frontier replay: the
// sampling coins (drawn from the pooled counter streams exactly as
// every other engine draws them), 64-seed batched component discovery,
// and one EdgeMap voter-gather wave per component. visit observes each
// component in transcript order — the engine finishes thresholds there,
// the search cache captures adjacency instead. Shared so that a solve
// and a search probe provably traverse identically.
func collectComps(ctx context.Context, g *graph.Graph, opts Options, scratch *seqScratch, ft *flightTrace, res *Result, visit func(sc *seqComp)) ([]*seqComp, error) {
	n := g.N()
	ids := congest.PermutedIDs(n, opts.Seed)
	rngs := scratch.bank.Rands(opts.Seed, n)
	fsc := scratch.frontierSets(n)

	p1 := opts.P / 2
	p2 := 0.0
	if p1 < 1 {
		p2 = (opts.P - p1) / (1 - p1)
	}

	var comps []*seqComp
	for ver := 0; ver < opts.Versions; ver++ {
		if err := ctx.Err(); err != nil {
			return comps, fmt.Errorf("core: frontier run interrupted at version %d: %w", ver, err)
		}
		ft.begin(fmt.Sprintf("v%d/explore", ver))
		inS := scratch.inS
		inS.Clear()
		for v := 0; v < n; v++ {
			c1 := rngs[v].Float64() < p1
			c2 := rngs[v].Float64() < p2
			if c1 || c2 {
				inS.Add(v)
			}
		}
		res.SampleSizes[ver] = inS.Count()

		for ci, members := range frontier.Components(g, inS, fsc, ft.onWave()) {
			if ci%seqCtxCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return comps, fmt.Errorf("core: frontier run interrupted at version %d: %w", ver, err)
				}
			}
			if len(members) > res.MaxComponent {
				res.MaxComponent = len(members)
			}
			if len(members) > opts.MaxComponentSize {
				return comps, fmt.Errorf("%w: %d > %d (lower the sampling probability)",
					ErrComponentTooLarge, len(members), opts.MaxComponentSize)
			}
			sc := newSeqComp(ids, members, ver)

			// Voters in one EdgeMap wave: Γ(members) \ S, plus the
			// members themselves — exactly the tree nodes and claimants
			// of the distributed protocol.
			memberSet := scratch.memberSet
			memberSet.Clear()
			for _, m := range members {
				memberSet.Add(m)
			}
			frontier.EdgeMap(g, memberSet, inS, scratch.voterSet)
			for _, m := range members {
				scratch.voterSet.Add(m)
			}
			sc.voters = scratch.voterSet.Indices()
			sc.voterIdx = make(map[int]int, len(sc.voters))
			for i, u := range sc.voters {
				sc.voterIdx[u] = i
			}

			visit(sc)
			comps = append(comps, sc)
		}
		ft.end(res.SampleSizes[ver])
		if opts.Progress != nil {
			opts.Progress(Progress{
				Version: ver, Phase: fmt.Sprintf("v%d/explore", ver),
				Step: ver + 1, Total: opts.Versions + 1,
			})
		}
	}
	return comps, nil
}

// flightTrace adapts the flight recorder to the frontier engine's event
// stream: one KindRound per traversal wave (Frontier = wave population,
// Frames = arena entries examined, Bytes = the 4-byte targets those
// loads moved), one KindPhase per boosting version plus the decision
// stage, with heap deltas sampled only at phase boundaries like every
// other engine. A nil *flightTrace is valid and free: every method
// no-ops, so the hot path carries no recorder branches of its own.
type flightTrace struct {
	rec    *flight.Recorder
	heap   int64
	ord    int32
	rounds int64 // cumulative wave index across the run
	phaseW int64 // waves within the current phase
	waveFn func(pop int, examined int64)
}

func newFlightTrace(rec *flight.Recorder) *flightTrace {
	if rec == nil {
		return nil
	}
	ft := &flightTrace{rec: rec, heap: flight.HeapBytes(), ord: -1}
	ft.waveFn = func(pop int, examined int64) {
		ft.rounds++
		ft.phaseW++
		ft.rec.Record(flight.Event{
			Kind:     flight.KindRound,
			Phase:    ft.ord,
			Round:    ft.rounds,
			Frontier: int32(pop),
			Frames:   examined,
			Bytes:    4 * examined,
		})
	}
	return ft
}

func (ft *flightTrace) begin(name string) {
	if ft == nil {
		return
	}
	ft.ord = ft.rec.BeginPhase(name)
	ft.phaseW = 0
}

func (ft *flightTrace) end(frontierSize int) {
	if ft == nil {
		return
	}
	now := flight.HeapBytes()
	ft.rec.Record(flight.Event{
		Kind:      flight.KindPhase,
		Phase:     ft.ord,
		Round:     ft.phaseW,
		Frontier:  int32(frontierSize),
		HeapDelta: now - ft.heap,
	})
	ft.heap = now
}

func (ft *flightTrace) onWave() func(pop int, examined int64) {
	if ft == nil {
		return nil
	}
	return ft.waveFn
}
