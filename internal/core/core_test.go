package core

import (
	"errors"
	"fmt"
	"testing"

	"nearclique/internal/bitset"
	"nearclique/internal/gen"
	"nearclique/internal/graph"
)

func defaultOpts(seed int64) Options {
	return Options{Epsilon: 0.3, ExpectedSample: 6, Seed: seed}
}

// equalResults compares everything except Metrics.
func equalResults(t *testing.T, a, b *Result, ctx string) {
	t.Helper()
	if len(a.Labels) != len(b.Labels) {
		t.Fatalf("%s: label lengths %d vs %d", ctx, len(a.Labels), len(b.Labels))
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("%s: label[%d] = %d vs %d", ctx, i, a.Labels[i], b.Labels[i])
		}
	}
	if len(a.Candidates) != len(b.Candidates) {
		t.Fatalf("%s: candidate counts %d vs %d", ctx, len(a.Candidates), len(b.Candidates))
	}
	for i := range a.Candidates {
		ca, cb := a.Candidates[i], b.Candidates[i]
		if ca.Label != cb.Label || ca.Version != cb.Version {
			t.Fatalf("%s: candidate %d identity (%d,%d) vs (%d,%d)",
				ctx, i, ca.Label, ca.Version, cb.Label, cb.Version)
		}
		if !equalInts(ca.Members, cb.Members) {
			t.Fatalf("%s: candidate %d members %v vs %v", ctx, i, ca.Members, cb.Members)
		}
		if !equalInts(ca.SubsetX, cb.SubsetX) {
			t.Fatalf("%s: candidate %d subset %v vs %v", ctx, i, ca.SubsetX, cb.SubsetX)
		}
	}
	if len(a.SampleSizes) != len(b.SampleSizes) {
		t.Fatalf("%s: sample size counts", ctx)
	}
	for i := range a.SampleSizes {
		if a.SampleSizes[i] != b.SampleSizes[i] {
			t.Fatalf("%s: sample size[%d] %d vs %d", ctx, i, a.SampleSizes[i], b.SampleSizes[i])
		}
	}
	if a.MaxComponent != b.MaxComponent {
		t.Fatalf("%s: max component %d vs %d", ctx, a.MaxComponent, b.MaxComponent)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDistributedEqualsSequential is the central equivalence check: the
// CONGEST protocol and the centralized reference must produce identical
// outputs on identical seeds, across graph families.
func TestDistributedEqualsSequential(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"er-sparse", gen.ErdosRenyi(60, 0.05, 1)},
		{"er-medium", gen.ErdosRenyi(60, 0.2, 2)},
		{"er-dense", gen.ErdosRenyi(40, 0.5, 3)},
		{"planted", gen.PlantedNearClique(80, 24, 0.02, 0.05, 4).Graph},
		{"planted-dense-bg", gen.PlantedNearClique(60, 20, 0.05, 0.15, 5).Graph},
		{"path", gen.Path(30)},
		{"cycle", gen.Cycle(25)},
		{"star", gen.Star(30)},
		{"complete", gen.Complete(25)},
		{"empty", gen.Empty(20)},
		{"shingles", gen.ShinglesCounterexample(64, 0.5).Graph},
		{"geometric", mustGraph(gen.RandomGeometric(50, 0.3, 6))},
	}
	for _, tc := range cases {
		for seed := int64(0); seed < 4; seed++ {
			opts := defaultOpts(seed)
			dist, errD := Find(tc.g, opts)
			seq, errS := FindSequential(tc.g, opts)
			if (errD == nil) != (errS == nil) {
				t.Fatalf("%s seed %d: error mismatch %v vs %v", tc.name, seed, errD, errS)
			}
			if errD != nil {
				if !errors.Is(errD, ErrComponentTooLarge) {
					t.Fatalf("%s seed %d: unexpected error %v", tc.name, seed, errD)
				}
				continue
			}
			equalResults(t, dist, seq, fmt.Sprintf("%s seed %d", tc.name, seed))
		}
	}
}

func mustGraph(g *graph.Graph, _ [][2]float64) *graph.Graph { return g }

func TestDistributedEqualsSequentialBoosted(t *testing.T) {
	g := gen.PlantedNearClique(70, 21, 0.02, 0.06, 7).Graph
	for seed := int64(0); seed < 3; seed++ {
		opts := defaultOpts(seed)
		opts.Versions = 3
		dist, errD := Find(g, opts)
		seq, errS := FindSequential(g, opts)
		if errD != nil || errS != nil {
			t.Fatalf("seed %d: errors %v / %v", seed, errD, errS)
		}
		equalResults(t, dist, seq, fmt.Sprintf("boosted seed %d", seed))
	}
}

// TestCandidatesMatchOracleT: each committed candidate must be exactly
// T_ε(X) per the graph oracle (Eq. 2), computed on the whole graph. This
// pins the distributed computation to the paper's definitions.
func TestCandidatesMatchOracleT(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := gen.PlantedNearClique(70, 20, 0.03, 0.08, seed+100).Graph
		opts := defaultOpts(seed)
		res, err := Find(g, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, c := range res.Candidates {
			x := bitset.FromIndices(g.N(), c.SubsetX)
			want := g.T(x, opts.Epsilon).Indices()
			if !equalInts(c.Members, want) {
				t.Fatalf("seed %d: candidate %d members %v ≠ oracle T %v",
					seed, c.Label, c.Members, want)
			}
		}
	}
}

// TestLemma53Invariant: every candidate T_ε(X) of size t is an (nε/t)-near
// clique (Lemma 5.3).
func TestLemma53Invariant(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := gen.PlantedNearClique(80, 24, 0.02, 0.05, seed+200).Graph
		opts := defaultOpts(seed)
		res, err := Find(g, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, c := range res.Candidates {
			tsz := len(c.Members)
			if tsz <= 1 {
				continue
			}
			bound := float64(g.N()) * opts.Epsilon / float64(tsz)
			set := bitset.FromIndices(g.N(), c.Members)
			if !g.IsNearClique(set, bound) {
				t.Fatalf("seed %d: candidate of size %d has density %v < 1-%v",
					seed, tsz, g.Density(set), bound)
			}
		}
	}
}

func TestFindsPlantedClique(t *testing.T) {
	// With a planted strict clique of 30% of the nodes and a few seeds,
	// the algorithm should succeed for at least one seed (Theorem 5.7
	// promises constant success probability; we demand 1-of-8).
	p := gen.PlantedClique(100, 30, 0.03, 42)
	succeeded := false
	for seed := int64(0); seed < 8 && !succeeded; seed++ {
		opts := Options{Epsilon: 0.2, ExpectedSample: 7, Seed: seed}
		res, err := Find(p.Graph, opts)
		if err != nil {
			continue
		}
		best := res.Best()
		if best == nil {
			continue
		}
		// Success: a large, dense output.
		if len(best.Members) >= 20 && best.Density > 0.85 {
			succeeded = true
		}
	}
	if !succeeded {
		t.Fatal("no seed recovered the planted clique")
	}
}

func TestLabelsConsistentWithCandidates(t *testing.T) {
	g := gen.PlantedNearClique(60, 18, 0.02, 0.08, 11).Graph
	res, err := Find(g, defaultOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	fromLabels := map[int64][]int{}
	for i, l := range res.Labels {
		if l != NoLabel {
			fromLabels[l] = append(fromLabels[l], i)
		}
	}
	if len(fromLabels) != len(res.Candidates) {
		t.Fatalf("%d labels vs %d candidates", len(fromLabels), len(res.Candidates))
	}
	for _, c := range res.Candidates {
		if !equalInts(fromLabels[c.Label], c.Members) {
			t.Fatalf("candidate %d members mismatch labels", c.Label)
		}
	}
}

func TestCandidatesDisjoint(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := gen.ErdosRenyi(50, 0.3, seed)
		opts := defaultOpts(seed)
		opts.Versions = 2
		res, err := Find(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for _, c := range res.Candidates {
			for _, m := range c.Members {
				if seen[m] {
					t.Fatalf("seed %d: node %d in two candidates", seed, m)
				}
				seen[m] = true
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := gen.PlantedNearClique(60, 18, 0.05, 0.05, 9).Graph
	a, err := Find(g, defaultOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Find(g, defaultOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, a, b, "same seed")
	if a.Metrics.Rounds != b.Metrics.Rounds || a.Metrics.Frames != b.Metrics.Frames {
		t.Fatalf("metrics differ across identical runs: %d/%d vs %d/%d",
			a.Metrics.Rounds, a.Metrics.Frames, b.Metrics.Rounds, b.Metrics.Frames)
	}
}

func TestDeterminismAcrossParallelism(t *testing.T) {
	g := gen.PlantedNearClique(60, 18, 0.05, 0.05, 13).Graph
	opts := defaultOpts(5)
	opts.Parallelism = 1
	a, err := Find(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 8
	b, err := Find(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, a, b, "parallelism")
}

func TestMessageBudgetRespected(t *testing.T) {
	g := gen.PlantedNearClique(80, 24, 0.05, 0.05, 15).Graph
	res, err := Find(g, defaultOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	budget := 4*bitsFor(g.N()+2) + 16 // congest.DefaultFrameBits(n)
	if res.Metrics.MaxFrameBits > budget {
		t.Fatalf("max frame %d bits exceeds budget %d", res.Metrics.MaxFrameBits, budget)
	}
	if res.Metrics.MaxFrameBits == 0 {
		t.Fatal("no frames recorded")
	}
}

func TestMaxRoundsAborts(t *testing.T) {
	g := gen.PlantedClique(60, 20, 0.05, 21).Graph
	opts := defaultOpts(2)
	opts.MaxRounds = 3
	res, err := Find(g, opts)
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
	for i, l := range res.Labels {
		if l != NoLabel {
			t.Fatalf("node %d has label %d after abort", i, l)
		}
	}
	if res.Metrics.Rounds != 3 {
		t.Fatalf("rounds=%d, want 3", res.Metrics.Rounds)
	}
}

func TestComponentCapAborts(t *testing.T) {
	g := gen.Complete(30)
	opts := Options{Epsilon: 0.3, P: 1, Seed: 1, MaxComponentSize: 8}
	_, err := Find(g, opts)
	if !errors.Is(err, ErrComponentTooLarge) {
		t.Fatalf("err = %v, want ErrComponentTooLarge", err)
	}
	_, err = FindSequential(g, opts)
	if !errors.Is(err, ErrComponentTooLarge) {
		t.Fatalf("sequential err = %v, want ErrComponentTooLarge", err)
	}
}

func TestMinSizeFilters(t *testing.T) {
	// With MinSize above n every candidate is filtered.
	g := gen.PlantedClique(50, 15, 0.05, 33).Graph
	opts := defaultOpts(3)
	opts.MinSize = 100
	res, err := Find(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 0 {
		t.Fatalf("MinSize=100 still produced %d candidates", len(res.Candidates))
	}
	for _, l := range res.Labels {
		if l != NoLabel {
			t.Fatal("labels assigned despite MinSize filter")
		}
	}
}

func TestEdgeCaseGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"empty-0", gen.Empty(0)},
		{"empty-1", gen.Empty(1)},
		{"single-edge", graph.FromEdges(2, [][2]int{{0, 1}})},
		{"two-components", graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}})},
	}
	for _, tc := range cases {
		opts := Options{Epsilon: 0.3, P: 0.8, Seed: 4}
		dist, errD := Find(tc.g, opts)
		seq, errS := FindSequential(tc.g, opts)
		if errD != nil || errS != nil {
			t.Fatalf("%s: errors %v / %v", tc.name, errD, errS)
		}
		equalResults(t, dist, seq, tc.name)
	}
}

func TestOptionValidation(t *testing.T) {
	g := gen.Path(5)
	bad := []Options{
		{Epsilon: 0, P: 0.5},
		{Epsilon: 0.6, P: 0.5},
		{Epsilon: -0.1, P: 0.5},
		{Epsilon: 0.3, P: 1.5},
		{Epsilon: 0.3}, // neither P nor ExpectedSample
		{Epsilon: 0.3, P: 0.5, MaxComponentSize: 50},
	}
	for i, o := range bad {
		if _, err := Find(g, o); err == nil {
			t.Fatalf("case %d: invalid options accepted: %+v", i, o)
		}
	}
}

func TestExpectedSampleSetsP(t *testing.T) {
	g := gen.ErdosRenyi(100, 0.05, 9)
	opts := Options{Epsilon: 0.3, ExpectedSample: 5, Seed: 2}
	res, err := Find(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	// E|S| = 5; a sample of more than 30 would be a broken coin.
	if res.SampleSizes[0] > 30 {
		t.Fatalf("sample size %d implausible for s=5", res.SampleSizes[0])
	}
}

func TestBoostingImprovesSuccess(t *testing.T) {
	// At a deliberately small sample size the per-run success probability
	// is modest; λ=6 versions must succeed at least as often across seeds.
	p := gen.PlantedClique(90, 36, 0.02, 55)
	success := func(versions int) int {
		wins := 0
		for seed := int64(0); seed < 6; seed++ {
			opts := Options{Epsilon: 0.25, ExpectedSample: 5, Seed: seed, Versions: versions}
			res, err := FindSequential(p.Graph, opts)
			if err != nil {
				continue
			}
			if b := res.Best(); b != nil && len(b.Members) >= 18 {
				wins++
			}
		}
		return wins
	}
	w1, w6 := success(1), success(6)
	if w6 < w1 {
		t.Fatalf("boosting reduced success: λ=1 → %d wins, λ=6 → %d wins", w1, w6)
	}
	if w6 == 0 {
		t.Fatal("boosted runs never succeeded")
	}
}

func TestSubsetXContainedInSample(t *testing.T) {
	g := gen.PlantedNearClique(70, 21, 0.02, 0.06, 77).Graph
	res, err := Find(g, defaultOpts(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if len(c.SubsetX) == 0 {
			t.Fatal("committed candidate with empty subset X")
		}
	}
}

func TestRoundsScaleWithSampleSize(t *testing.T) {
	// Lemma 5.1: rounds = O(2^|S|). Compare a tiny sample against a larger
	// one on the same graph; rounds must grow substantially.
	g := gen.PlantedClique(100, 40, 0.02, 88).Graph
	small, err := Find(g, Options{Epsilon: 0.3, ExpectedSample: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Find(g, Options{Epsilon: 0.3, ExpectedSample: 9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if large.MaxComponent > small.MaxComponent && large.Metrics.Rounds <= small.Metrics.Rounds {
		t.Fatalf("rounds did not grow with component size: %d (k=%d) vs %d (k=%d)",
			small.Metrics.Rounds, small.MaxComponent, large.Metrics.Rounds, large.MaxComponent)
	}
}
