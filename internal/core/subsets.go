package core

import "math/bits"

// This file holds the arithmetic shared verbatim by the distributed node
// logic and the sequential reference implementation, so that the two are
// provably doing the same computation: subset indexing, the K/T membership
// thresholds of Eqs. (1)–(2), the argmax rule of the decision stage, and
// the candidate comparison used for voting.

// Subsets of a component Si with sorted member list m[0..k-1] are indexed
// by bitmask b ∈ [1, 2^k): X_b = { m[i] : bit i of b set }. Index 0 (the
// empty set) is excluded; see DESIGN.md §2.

// subsetCount returns the number of indexed subsets for a component of
// size k: 2^k − 1.
func subsetCount(k int) int { return (1 << uint(k)) - 1 }

// kMemberCounts computes, for every subset index b ∈ [0, 2^k), the number
// of members of X_b adjacent to a node, given adj[i] = whether the node is
// adjacent to member i. Runs in O(2^k) via the standard lowest-bit DP.
func kMemberCounts(k int, adj func(i int) bool) []uint8 {
	cnt := make([]uint8, 1<<uint(k))
	for b := 1; b < len(cnt); b++ {
		low := b & (-b)
		i := bits.TrailingZeros(uint(b))
		cnt[b] = cnt[b^low]
		if adj(i) {
			cnt[b]++
		}
	}
	return cnt
}

// meetsK reports membership in K_{2ε²}(X): |Γ(v) ∩ X| ≥ (1−2ε²)·|X|.
func meetsK(cnt, xSize int, eps float64) bool {
	return float64(cnt) >= (1-2*eps*eps)*float64(xSize)-1e-9
}

// meetsOuterK reports membership in K_ε(Y): |Γ(v) ∩ Y| ≥ (1−ε)·|Y|.
func meetsOuterK(cnt, ySize int, eps float64) bool {
	return float64(cnt) >= (1-eps)*float64(ySize)-1e-9
}

// argmaxSubset returns the subset index maximizing sizes[b] over b ≥ 1,
// breaking ties toward the smallest index. sizes[0] is ignored. Returns 0
// if all sizes are zero (no candidate).
func argmaxSubset(sizes []int32) int32 {
	best, bestIdx := int32(0), int32(0)
	for b := 1; b < len(sizes); b++ {
		if sizes[b] > best {
			best = sizes[b]
			bestIdx = int32(b)
		}
	}
	return bestIdx
}

// candKey identifies a decision-stage candidate across boosting versions.
type candKey struct {
	rootIdx int32
	version int32
}

// candInfo is what a participant knows about an announced candidate.
type candInfo struct {
	rootID int64
	size   int32
}

// betterCandidate reports whether candidate a beats candidate b under the
// paper's rule: larger |T_ε(X(Si))| first, ties toward the larger root ID.
// A further deterministic tie-break on version handles boosted runs where
// the same root wins in two versions.
func betterCandidate(aSize int32, aRoot int64, aVer int32, bSize int32, bRoot int64, bVer int32) bool {
	if aSize != bSize {
		return aSize > bSize
	}
	if aRoot != bRoot {
		return aRoot > bRoot
	}
	return aVer > bVer
}

// popcount16 is a tiny helper for subset sizes.
func popcount(b int) int { return bits.OnesCount(uint(b)) }
