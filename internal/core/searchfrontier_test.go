package core

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"nearclique/internal/flight"
	"nearclique/internal/gen"
)

// Search parity: the cached frontier bisection must return the same ε
// and a bit-identical Result as the per-probe sequential search, because
// the sampling coins never depend on ε — the cache re-evaluates only
// thresholds and votes. These tests pin that equivalence end to end.

func searchParityOptions(seed int64) SearchOptions {
	return SearchOptions{Rho: 0.05, ExpectedSample: 6, Versions: 2, Seed: seed}
}

func TestSearchFrontierMatchesSequentialSearch(t *testing.T) {
	for name, g := range determinismInstances() {
		for seed := int64(1); seed <= 4; seed++ {
			so := searchParityOptions(seed)
			wantEps, wantRes, wantErr := SearchContext(context.Background(), g, so)
			gotEps, gotRes, gotErr := SearchFrontierContext(context.Background(), g, so)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s seed %d: error mismatch: seq %v, frontier %v", name, seed, wantErr, gotErr)
			}
			if wantErr != nil {
				if !errors.Is(gotErr, ErrNotFound) || !errors.Is(wantErr, ErrNotFound) {
					t.Fatalf("%s seed %d: unexpected errors: seq %v, frontier %v", name, seed, wantErr, gotErr)
				}
				continue
			}
			if gotEps != wantEps {
				t.Fatalf("%s seed %d: ε %v != %v", name, seed, gotEps, wantEps)
			}
			if a, b := resultTranscript(gotRes, true), resultTranscript(wantRes, true); a != b {
				t.Fatalf("%s seed %d: frontier search result diverges:\n%s\nvs\n%s", name, seed, a, b)
			}
		}
	}
}

func TestSearchFrontierNotFoundParity(t *testing.T) {
	g := gen.Empty(300) // nothing to find at any ε
	so := SearchOptions{Rho: 0.5, ExpectedSample: 6, Seed: 3}
	_, _, seqErr := SearchContext(context.Background(), g, so)
	_, _, froErr := SearchFrontierContext(context.Background(), g, so)
	if !errors.Is(seqErr, ErrNotFound) || !errors.Is(froErr, ErrNotFound) {
		t.Fatalf("want ErrNotFound from both paths, got seq %v, frontier %v", seqErr, froErr)
	}
}

func TestSearchFrontierCancellation(t *testing.T) {
	g := gen.SparsePlantedNearClique(400, 120, 0.01, 8, 5).Graph
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := SearchFrontierContext(ctx, g, searchParityOptions(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatal("cancellation misreported as ErrNotFound")
	}
}

// TestSearchWithRunnerEngineParity pins that a simulator-backed runner
// finds the same ε with the same protocol outputs (metrics aside) as the
// sequential probes — the engine independence Solver.Search relies on.
func TestSearchWithRunnerEngineParity(t *testing.T) {
	g := gen.SparsePlantedNearClique(400, 120, 0.01, 8, 5).Graph
	so := searchParityOptions(2)
	seqEps, seqRes, err := SearchContext(context.Background(), g, so)
	if err != nil {
		t.Fatal(err)
	}
	shEps, shRes, err := SearchWithRunner(context.Background(), g, so, FindContext)
	if err != nil {
		t.Fatal(err)
	}
	if shEps != seqEps {
		t.Fatalf("sharded-probe search ε %v != sequential %v", shEps, seqEps)
	}
	if a, b := resultTranscript(shRes, false), resultTranscript(seqRes, false); a != b {
		t.Fatalf("sharded-probe search output diverges:\n%s\nvs\n%s", a, b)
	}
}

// TestFindFrontierMatchesSequentialAcrossGOMAXPROCS extends the engine
// determinism suite to the frontier engine: bit-identical transcripts —
// including the (all-zero) metrics block — against the sequential
// reference at every GOMAXPROCS setting.
func TestFindFrontierMatchesSequentialAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	base := Options{Epsilon: 0.25, ExpectedSample: 6, Seed: 3, Versions: 2}
	for name, g := range determinismInstances() {
		seq, err := FindSequential(g, base)
		if err != nil {
			t.Fatal(err)
		}
		want := resultTranscript(seq, true)
		for _, procs := range []int{1, 4} {
			runtime.GOMAXPROCS(procs)
			res, err := FindFrontier(g, base)
			if err != nil {
				t.Fatal(err)
			}
			if got := resultTranscript(res, true); got != want {
				t.Fatalf("%s GOMAXPROCS=%d: frontier transcript diverges from sequential:\n%s\nvs\n%s",
					name, procs, got, want)
			}
		}
	}
}

// TestFindFrontierFlightRoundEvents pins the flight contract of the
// engine: every traversal wave emits one KindRound event carrying a
// nonzero frontier popcount, and phases carry their wave counts.
func TestFindFrontierFlightRoundEvents(t *testing.T) {
	g := gen.SparsePlantedNearClique(400, 120, 0.01, 8, 5).Graph
	rec := flight.New(4096)
	_, err := FindFrontier(g, Options{
		Epsilon: 0.25, ExpectedSample: 6, Seed: 3, Versions: 2, Flight: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	rounds, phases := 0, 0
	var lastRound int64
	for _, ev := range rec.Snapshot() {
		switch ev.Kind {
		case flight.KindRound:
			rounds++
			if ev.Frontier <= 0 {
				t.Fatalf("round event %d has frontier popcount %d", rounds, ev.Frontier)
			}
			if ev.Frames <= 0 && ev.Frontier > 0 {
				// A wave over isolated sampled vertices can examine zero
				// arena entries; anything else must count frames.
				continue
			}
			if ev.Round <= lastRound {
				t.Fatalf("round index not increasing: %d after %d", ev.Round, lastRound)
			}
			lastRound = ev.Round
			if ev.Bytes != 4*ev.Frames {
				t.Fatalf("round payload %d != 4×frames %d", ev.Bytes, ev.Frames)
			}
		case flight.KindPhase:
			phases++
		}
	}
	if rounds == 0 {
		t.Fatal("frontier run emitted no per-wave round events")
	}
	if phases < 3 { // two explore versions + decide
		t.Fatalf("frontier run emitted %d phase events, want ≥ 3", phases)
	}
}

// TestSearchFrontierProbeAllocs pins the cached probe's allocation
// profile: after the shared traversal, a probe re-evaluates thresholds
// and votes in preallocated buffers — the only per-probe allocations
// permitted are the density check's scratch bitset. This is the
// enforcement half of routing Search probes through pooled scratch.
func TestSearchFrontierProbeAllocs(t *testing.T) {
	g := gen.SparsePlantedNearClique(2000, 200, 0.01, 8, 5).Graph
	g.CSR()
	so, need, err := SearchOptions{Rho: 0.025, ExpectedSample: 40, Versions: 2, Seed: 3}.normalized(g.N())
	if err != nil {
		t.Fatal(err)
	}
	scratch := getSeqScratch()
	defer putSeqScratch(scratch)
	cache, err := buildSearchCache(context.Background(), g, so, need, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if !cache.probe(so.EpsMax) {
		t.Fatalf("εMax probe found nothing; the allocation measurement would be vacuous")
	}
	allocs := testing.AllocsPerRun(50, func() {
		cache.probe(0.3)
		cache.probe(0.1)
	})
	// Two probes per run; each may allocate the density check's bitset
	// (two allocations) and nothing else.
	if allocs > 8 {
		t.Fatalf("cached probes allocate %.1f objects per pair, want ≤ 8", allocs)
	}
}
