package core

import (
	"context"
	"fmt"

	"nearclique/internal/congest"
	"nearclique/internal/graph"
)

// driver orchestrates the phases of Algorithm DistNearClique over a
// congest.Network. Nodes read the current phase and version through their
// back-pointer; the driver mutates them only between phases, when the
// network is quiescent.
type driver struct {
	g       *graph.Graph
	opts    Options
	wire    wire
	net     *congest.Network
	nodes   []*node
	phase   int
	version int
}

// Find runs the distributed algorithm on g and returns the labeled
// near-cliques. On ErrRoundLimit or ErrComponentTooLarge the returned
// Result still carries the metrics accumulated so far with all-⊥ labels
// (the paper's abort wrapper).
func Find(g *graph.Graph, opts Options) (*Result, error) {
	return FindContext(context.Background(), g, opts)
}

// FindContext is Find with cooperative cancellation: the context is
// observed at every simulator round boundary, so canceling mid-run on even
// a million-node instance returns within one round's worth of work. The
// error then wraps context.Canceled or context.DeadlineExceeded
// (errors.Is-visible), and the returned Result carries the metrics of
// every round completed before the interruption with all-⊥ labels, like
// the paper's abort wrapper.
func FindContext(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	opts, err := opts.validated(g.N())
	if err != nil {
		return nil, err
	}
	d := &driver{g: g, opts: opts}
	frameBits := congest.DefaultFrameBits(g.N())
	d.wire = newWire(g.N(), opts.Versions, frameBits)
	maxK := opts.MaxComponentSize
	if g.N() < maxK {
		maxK = g.N() // components can never exceed n
	}
	if need := d.wire.minFrameBits(maxK); need > frameBits {
		// Cannot happen with the default budget and admissible component
		// caps, but guard custom configurations explicitly.
		return nil, fmt.Errorf("core: frame budget %d bits below the %d required", frameBits, need)
	}
	d.nodes = make([]*node, g.N())
	d.net = congest.NewNetwork(g, congest.Options{
		Seed:          opts.Seed,
		FrameBits:     frameBits,
		MaxRounds:     opts.MaxRounds,
		Parallelism:   opts.Parallelism,
		Engine:        opts.Engine,
		Async:         opts.Async,
		AsyncMaxDelay: opts.AsyncMaxDelay,
		Flight:        opts.Flight,
	}, func(ctx *congest.Context) congest.Proc {
		nd := newNode(d, ctx)
		d.nodes[ctx.Index()] = nd
		return nd
	})

	res := &Result{
		Labels:      make([]int64, g.N()),
		SampleSizes: make([]int, opts.Versions),
	}
	for i := range res.Labels {
		res.Labels[i] = NoLabel
	}

	abort := func(err error) (*Result, error) {
		res.Metrics = d.net.Metrics()
		return res, err
	}

	explorationPhases := []int{
		phaseSample, phaseBFS, phaseClaim, phaseCompUp, phaseCompDown,
		phaseShare, phaseLeafClaim, phaseKBits, phaseKSum, phaseKDown,
		phaseTSum, phaseAnnounce,
	}
	step := 0
	total := opts.Versions*len(explorationPhases) + 2
	report := func(version int, phase string) {
		step++
		if opts.Progress == nil {
			return
		}
		m := d.net.Metrics()
		opts.Progress(Progress{
			Version: version, Phase: phase, Step: step, Total: total,
			Rounds: m.Rounds, Frames: m.Frames,
		})
	}
	for v := 0; v < opts.Versions; v++ {
		d.version = v
		for _, ph := range explorationPhases {
			d.phase = ph
			name := fmt.Sprintf("v%d/%s", v, phaseNames[ph])
			if err := d.net.RunPhaseContext(ctx, name); err != nil {
				return abort(err)
			}
			report(v, name)
			switch ph {
			case phaseSample:
				res.SampleSizes[v] = d.sampleSize(v)
			case phaseCompDown:
				if size := d.largestComponent(v); size > res.MaxComponent {
					res.MaxComponent = size
				}
				if res.MaxComponent > opts.MaxComponentSize {
					return abort(fmt.Errorf("%w: %d > %d (lower the sampling probability)",
						ErrComponentTooLarge, res.MaxComponent, opts.MaxComponentSize))
				}
			}
		}
	}
	for _, ph := range []int{phaseVote, phaseCommit} {
		d.phase = ph
		if err := d.net.RunPhaseContext(ctx, phaseNames[ph]); err != nil {
			return abort(err)
		}
		report(-1, phaseNames[ph])
	}

	// Extract outputs.
	for i, nd := range d.nodes {
		res.Labels[i] = nd.label
	}
	res.Candidates = finalizeCandidates(g, d.collectCandidates(res.Labels))
	res.Metrics = d.net.Metrics()
	return res, nil
}

func (d *driver) sampleSize(v int) int {
	count := 0
	for _, nd := range d.nodes {
		if nd.vers[v] != nil && nd.vers[v].inS {
			count++
		}
	}
	return count
}

func (d *driver) largestComponent(v int) int {
	max := 0
	for _, nd := range d.nodes {
		vs := nd.vers[v]
		if vs != nil && vs.inS && vs.parent == noParent && len(vs.compMembers) > max {
			max = len(vs.compMembers)
		}
	}
	return max
}

// collectCandidates scans committed roots and groups members by label.
func (d *driver) collectCandidates(labels []int64) []Candidate {
	var cands []Candidate
	for _, nd := range d.nodes {
		for v, vs := range nd.vers {
			if vs == nil || !vs.inS || vs.parent != noParent {
				continue
			}
			cv := vs.comps[vs.rootIdx]
			if cv == nil || !cv.committed {
				continue
			}
			label := cv.rootID*int64(d.opts.Versions) + int64(v)
			var members []int
			for i, l := range labels {
				if l == label {
					members = append(members, i)
				}
			}
			cands = append(cands, Candidate{
				Label:   label,
				Version: v,
				Members: members,
				SubsetX: decodeSubset(cv.members, cv.bStar),
			})
		}
	}
	return cands
}

// decodeSubset expands a subset index over the sorted member list.
func decodeSubset(members []int32, b int32) []int {
	var out []int
	for i := 0; i < len(members); i++ {
		if b&(1<<uint(i)) != 0 {
			out = append(out, int(members[i]))
		}
	}
	return out
}
