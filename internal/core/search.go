package core

import (
	"context"
	"errors"
	"fmt"

	"nearclique/internal/flight"
	"nearclique/internal/graph"
)

// This file implements an extension suggested by the paper's related work:
// Fischer & Newman [9] show that one can find (at enormous query cost) the
// smallest ε for which a graph has an ε-near clique of size ρn. Here we
// provide the practical analogue on top of DistNearClique: a monotone
// search over the detection parameter ε that returns the smallest ε at
// which the (boosted) algorithm reports a near-clique of the requested
// size. It is a heuristic estimator, not the tower-of-exponents exact
// procedure of [9] — see EXPERIMENTS.md E10 for the calibration.

// SearchOptions configures SearchMinEpsilon.
type SearchOptions struct {
	// Rho is the required set fraction: the returned ε is the smallest at
	// which a near-clique of ≥ Rho·n nodes is reported.
	Rho float64
	// ExpectedSample and Versions are passed to each probe run (versions
	// defaults to 4: individual probes must be reliable for the search to
	// be monotone in practice).
	ExpectedSample float64
	Versions       int
	// Steps is the number of bisection steps (default 8, giving ε
	// resolution (εMax−εMin)/2⁸).
	Steps int
	// EpsMin and EpsMax bound the search (defaults 0.02 and 0.45).
	EpsMin, EpsMax float64
	// Seed drives every probe.
	Seed int64
	// Flight, if non-nil, receives the probes' flight events: phase
	// summaries from full probe runs, or the single shared traversal's
	// wave events on the cached frontier path. Purely observational.
	Flight *flight.Recorder
}

// normalized applies the documented defaults and bounds and derives the
// required set size ⌈Rho·n⌉ (floor 1).
func (so SearchOptions) normalized(n int) (SearchOptions, int, error) {
	if so.Rho <= 0 || so.Rho > 1 {
		return so, 0, fmt.Errorf("core: Rho %v outside (0, 1]", so.Rho)
	}
	if so.Steps <= 0 {
		so.Steps = 8
	}
	if so.Versions <= 0 {
		so.Versions = 4
	}
	if so.ExpectedSample <= 0 {
		so.ExpectedSample = 6
	}
	if so.EpsMin <= 0 {
		so.EpsMin = 0.02
	}
	if so.EpsMax <= 0 || so.EpsMax >= 0.5 {
		so.EpsMax = 0.45
	}
	if so.EpsMin >= so.EpsMax {
		return so, 0, fmt.Errorf("core: EpsMin %v not below EpsMax %v", so.EpsMin, so.EpsMax)
	}
	need := int(so.Rho * float64(n))
	if need < 1 {
		need = 1
	}
	return so, need, nil
}

// ErrNotFound is returned by SearchMinEpsilon when even the largest probed
// ε reports no near-clique of the requested size.
var ErrNotFound = errors.New("core: no near-clique of the requested size found at any probed ε")

// SearchMinEpsilon bisects over ε and returns the smallest probed ε at
// which the algorithm reports an ε-near clique of size ≥ ρn, together with
// that run's result. Probes use FindSequential (the two implementations
// are equivalent; the sequential one is cheaper).
func SearchMinEpsilon(g *graph.Graph, so SearchOptions) (float64, *Result, error) {
	return SearchContext(context.Background(), g, so)
}

// SearchContext is SearchMinEpsilon with cooperative cancellation: every
// probe run observes ctx, and a canceled probe aborts the whole search
// with an error wrapping context.Canceled or context.DeadlineExceeded —
// cancellation is never conflated with a probe that merely found nothing.
func SearchContext(ctx context.Context, g *graph.Graph, so SearchOptions) (float64, *Result, error) {
	return SearchWithRunner(ctx, g, so, FindSequentialContext)
}

// SearchWithRunner is the ε-bisection driver with a pluggable probe
// executor: run performs one full probe run (FindSequentialContext for
// the classic path; the public Solver passes a simulator-backed closure
// when a simulator engine is selected, so Search costs — and measures —
// what the configured engine costs). Detection is engine-independent
// (the engines are bit-identical), so the returned ε never depends on
// the runner; only the Result's Metrics do.
func SearchWithRunner(ctx context.Context, g *graph.Graph, so SearchOptions, run func(context.Context, *graph.Graph, Options) (*Result, error)) (float64, *Result, error) {
	so, need, err := so.normalized(g.N())
	if err != nil {
		return 0, nil, err
	}

	probe := func(eps float64) (*Result, bool, error) {
		res, err := run(ctx, g, Options{
			Epsilon:        eps,
			ExpectedSample: so.ExpectedSample,
			Seed:           so.Seed,
			Versions:       so.Versions,
			MinSize:        need,
			Flight:         so.Flight,
		})
		if err != nil {
			// Cancellation aborts the search; any other probe failure
			// (e.g. an oversized component) counts as a non-detection.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, false, err
			}
			return nil, false, nil
		}
		best := res.Best()
		return res, best != nil && len(best.Members) >= need &&
			g.DensityOf(best.Members) >= 1-eps-1e-9, nil
	}

	// The detection event is monotone in ε in expectation (larger ε only
	// relaxes every threshold); bisect for its boundary.
	lo, hi := so.EpsMin, so.EpsMax
	res, ok, err := probe(hi)
	if err != nil {
		return 0, nil, err
	}
	if !ok {
		return 0, nil, ErrNotFound
	}
	bestEps, bestRes := hi, res
	for step := 0; step < so.Steps; step++ {
		mid := (lo + hi) / 2
		r, ok, err := probe(mid)
		if err != nil {
			return 0, nil, err
		}
		if ok {
			hi, bestEps, bestRes = mid, mid, r
		} else {
			lo = mid
		}
	}
	return bestEps, bestRes, nil
}
