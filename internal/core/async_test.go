package core

import (
	"fmt"
	"testing"

	"nearclique/internal/gen"
)

// TestAsyncEqualsSyncEqualsSequential validates the paper's §2 remark via
// Awerbuch's synchronizer: the full DistNearClique protocol, run on the
// asynchronous executor with random message delays, produces outputs
// bit-for-bit identical to the synchronous executor — which in turn equals
// the sequential reference.
func TestAsyncEqualsSyncEqualsSequential(t *testing.T) {
	graphs := []struct {
		name string
		mk   func() *gen.Planted
	}{
		{"planted", func() *gen.Planted {
			p := gen.PlantedNearClique(70, 22, 0.02, 0.05, 4)
			return &p
		}},
		{"planted-dense", func() *gen.Planted {
			p := gen.PlantedClique(50, 18, 0.1, 9)
			return &p
		}},
	}
	for _, tc := range graphs {
		g := tc.mk().Graph
		for seed := int64(0); seed < 3; seed++ {
			opts := defaultOpts(seed)
			syncRes, err := Find(g, opts)
			if err != nil {
				t.Fatalf("%s seed %d sync: %v", tc.name, seed, err)
			}
			asyncOpts := opts
			asyncOpts.Async = true
			asyncOpts.AsyncMaxDelay = 4
			asyncRes, err := Find(g, asyncOpts)
			if err != nil {
				t.Fatalf("%s seed %d async: %v", tc.name, seed, err)
			}
			seqRes, err := FindSequential(g, opts)
			if err != nil {
				t.Fatalf("%s seed %d seq: %v", tc.name, seed, err)
			}
			equalResults(t, syncRes, asyncRes, fmt.Sprintf("%s seed %d sync-vs-async", tc.name, seed))
			equalResults(t, asyncRes, seqRes, fmt.Sprintf("%s seed %d async-vs-seq", tc.name, seed))

			m := asyncRes.Metrics
			if m.AsyncAcks == 0 || m.AsyncSafes == 0 || m.AsyncVirtualTime == 0 {
				t.Fatalf("%s seed %d: synchronizer overhead not recorded: %+v", tc.name, seed, m)
			}
			// The synchronizer's ack overhead is one ack per protocol frame.
			if m.AsyncAcks != m.Frames {
				t.Fatalf("%s seed %d: acks %d ≠ frames %d", tc.name, seed, m.AsyncAcks, m.Frames)
			}
		}
	}
}

func TestAsyncBoostedRun(t *testing.T) {
	p := gen.PlantedClique(60, 20, 0.05, 3)
	opts := defaultOpts(1)
	opts.Versions = 2
	opts.Async = true
	asyncRes, err := Find(p.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Async = false
	syncRes, err := Find(p.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, syncRes, asyncRes, "boosted async")
}

func TestAsyncDelayIndependence(t *testing.T) {
	// Protocol outputs must not depend on the delay distribution — only
	// costs may change.
	p := gen.PlantedNearClique(60, 20, 0.02, 0.05, 8)
	var prev *Result
	for _, maxDelay := range []int{1, 3, 9} {
		opts := defaultOpts(2)
		opts.Async = true
		opts.AsyncMaxDelay = maxDelay
		res, err := Find(p.Graph, opts)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			equalResults(t, prev, res, fmt.Sprintf("maxDelay %d", maxDelay))
		}
		prev = res
	}
}
