package core

import (
	"sync"

	"nearclique/internal/congest"
)

// seqCtxCheckEvery bounds how many sampled components the sequential
// replay processes between context checks; exploring one component costs
// O(2^|Si|) work, so a small stride keeps cancellation latency at a few
// components without measurable polling overhead.
const seqCtxCheckEvery = 64

// seqScratch is the reusable per-run state of the sequential replay. The
// dominant allocation of a run on an n-node graph is the bank of n
// per-node RNG streams (two allocations each); everything else is sized by
// the sample, not the graph. Batch serving solves many graphs back to
// back, often concurrently, so the scratch lives in a sync.Pool: each
// in-flight run owns one scratch exclusively, and parallel SolveBatch
// workers draw distinct instances.
type seqScratch struct {
	bank *congest.RandBank
}

var seqScratchPool = sync.Pool{
	New: func() interface{} { return &seqScratch{bank: &congest.RandBank{}} },
}

func getSeqScratch() *seqScratch  { return seqScratchPool.Get().(*seqScratch) }
func putSeqScratch(s *seqScratch) { seqScratchPool.Put(s) }
