package core

import (
	"sync"

	"nearclique/internal/bitset"
	"nearclique/internal/congest"
	"nearclique/internal/frontier"
)

// seqCtxCheckEvery bounds how many sampled components the sequential
// replay processes between context checks; exploring one component costs
// O(2^|Si|) work, so a small stride keeps cancellation latency at a few
// components without measurable polling overhead.
const seqCtxCheckEvery = 64

// seqScratch is the reusable per-run state of the centralized engines.
// The dominant allocation of a run on an n-node graph is the bank of n
// per-node RNG streams (two allocations each); the frontier engine and
// the cached search probes add the traversal scratch (frontier bitsets
// and seed-membership words) and three sample-sized bitsets, all sized
// by the graph, none by the run. Batch serving solves many graphs back
// to back, often concurrently, so the scratch lives in a sync.Pool:
// each in-flight run owns one scratch exclusively, and parallel
// SolveBatch workers draw distinct instances.
type seqScratch struct {
	bank *congest.RandBank

	// Frontier-engine state, sized lazily by frontierSets: the kernel
	// scratch plus the per-version sample set and the per-component
	// member/voter sets the EdgeMap waves read and write.
	fsc       *frontier.Scratch
	setsN     int
	inS       *bitset.Set
	memberSet *bitset.Set
	voterSet  *bitset.Set
}

// frontierSets sizes the frontier-side scratch for an n-vertex graph
// and returns it with every bitset cleared.
func (s *seqScratch) frontierSets(n int) *frontier.Scratch {
	if s.fsc == nil {
		s.fsc = frontier.NewScratch(n)
	} else {
		s.fsc.Ensure(n)
	}
	if s.setsN != n || s.inS == nil {
		s.setsN = n
		s.inS = bitset.New(n)
		s.memberSet = bitset.New(n)
		s.voterSet = bitset.New(n)
	} else {
		s.inS.Clear()
		s.memberSet.Clear()
		s.voterSet.Clear()
	}
	return s.fsc
}

var seqScratchPool = sync.Pool{
	New: func() interface{} { return &seqScratch{bank: &congest.RandBank{}} },
}

func getSeqScratch() *seqScratch  { return seqScratchPool.Get().(*seqScratch) }
func putSeqScratch(s *seqScratch) { seqScratchPool.Put(s) }
