package core

import (
	"context"
	"fmt"

	"nearclique/internal/bitset"
	"nearclique/internal/congest"
	"nearclique/internal/flight"
	"nearclique/internal/graph"
)

// FindSequential runs the identical algorithm centrally: same coin flips
// (per-node RNG streams derived exactly as the simulator derives them),
// same component structure, same subset enumeration, thresholds, argmax,
// and voting rules. Its output is bit-for-bit equal to Find's on the same
// inputs (asserted by the equivalence tests), and it scales further
// because no messages are simulated.
//
// Options.MaxRounds is ignored (there are no rounds); everything else
// behaves as in Find.
func FindSequential(g *graph.Graph, opts Options) (*Result, error) {
	return FindSequentialContext(context.Background(), g, opts)
}

// FindSequentialContext is FindSequential with cooperative cancellation:
// the context is observed between boosting versions and between sampled
// components, the units of work of the centralized replay. On cancellation
// the error wraps context.Canceled or context.DeadlineExceeded and the
// returned Result carries whatever sample sizes were measured before the
// interruption, with all-⊥ labels.
//
// Per-run scratch state (the n per-node RNG streams) is drawn from a
// package-level pool, so repeated solves — in particular concurrent batch
// serving over shared immutable graphs — do not reallocate it. Pooling is
// invisible in the outputs: re-keyed streams are bit-identical to fresh
// ones.
func FindSequentialContext(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	opts, err := opts.validated(g.N())
	if err != nil {
		return nil, err
	}
	n := g.N()
	ids := congest.PermutedIDs(n, opts.Seed)

	res := &Result{
		Labels:      make([]int64, n),
		SampleSizes: make([]int, opts.Versions),
	}
	for i := range res.Labels {
		res.Labels[i] = NoLabel
	}

	// Persistent per-node RNGs: version j draws the (2j+1)-th and
	// (2j+2)-th floats of each node's stream, exactly as the distributed
	// nodes do (the same counter-based streams Context.Rand hands out).
	// The bank comes from the scratch pool; see seqScratch.
	scratch := getSeqScratch()
	defer putSeqScratch(scratch)
	rngs := scratch.bank.Rands(opts.Seed, n)

	// The sequential replay simulates no rounds, so its flight trace is
	// phase summaries only: one per boosting version (Frontier carries the
	// version's sample size |S|) plus one for the decision stage, each
	// with the live-heap delta across the step.
	recordStep := func(name string, frontier int) {}
	if opts.Flight != nil {
		heapMark := flight.HeapBytes()
		recordStep = func(name string, frontier int) {
			now := flight.HeapBytes()
			ord := opts.Flight.BeginPhase(name)
			opts.Flight.Record(flight.Event{
				Kind:      flight.KindPhase,
				Phase:     ord,
				Frontier:  int32(frontier),
				HeapDelta: now - heapMark,
			})
			heapMark = now
		}
	}

	var comps []*seqComp
	p1 := opts.P / 2
	p2 := 0.0
	if p1 < 1 {
		p2 = (opts.P - p1) / (1 - p1)
	}

	for ver := 0; ver < opts.Versions; ver++ {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("core: sequential run interrupted at version %d: %w", ver, err)
		}
		inS := bitset.New(n)
		for v := 0; v < n; v++ {
			c1 := rngs[v].Float64() < p1
			c2 := rngs[v].Float64() < p2
			if c1 || c2 {
				inS.Add(v)
			}
		}
		res.SampleSizes[ver] = inS.Count()

		for ci, members := range g.ComponentsOf(inS) {
			if ci%seqCtxCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return res, fmt.Errorf("core: sequential run interrupted at version %d: %w", ver, err)
				}
			}
			if len(members) > res.MaxComponent {
				res.MaxComponent = len(members)
			}
			if len(members) > opts.MaxComponentSize {
				return res, fmt.Errorf("%w: %d > %d (lower the sampling probability)",
					ErrComponentTooLarge, len(members), opts.MaxComponentSize)
			}
			sc := newSeqComp(ids, members, ver)

			// Voters: all members plus every non-sampled neighbor of a
			// member — exactly the tree nodes and claimants of the
			// distributed protocol.
			memberSet := bitset.FromIndices(n, members)
			voters := bitset.New(n)
			voters.Union(memberSet)
			for _, m := range members {
				for _, w := range g.Neighbors(m) {
					if !inS.Contains(int(w)) {
						voters.Add(int(w))
					}
				}
			}
			sc.voters = voters.Indices()
			sc.voterIdx = make(map[int]int, len(sc.voters))
			for i, u := range sc.voters {
				sc.voterIdx[u] = i
			}

			sc.finish(g, opts.Epsilon, opts.MinSize)
			comps = append(comps, sc)
		}
		recordStep(fmt.Sprintf("v%d/explore", ver), res.SampleSizes[ver])
		if opts.Progress != nil {
			opts.Progress(Progress{
				Version: ver, Phase: fmt.Sprintf("v%d/explore", ver),
				Step: ver + 1, Total: opts.Versions + 1,
			})
		}
	}

	// Decision stage: every voter acks its best adjacent candidate and
	// aborts the rest; a candidate commits iff no adjacent voter aborted.
	decideAndCommit(g, opts, comps, res)
	recordStep("decide", len(comps))
	if opts.Progress != nil {
		opts.Progress(Progress{
			Version: -1, Phase: "decide",
			Step: opts.Versions + 1, Total: opts.Versions + 1,
		})
	}
	return res, nil
}

// seqComp is the sequential mirror of one sampled component Si.
type seqComp struct {
	version  int
	rootIdx  int32
	rootID   int64
	members  []int32       // sorted
	voters   []int         // Si ∪ (Γ(Si) \ S), sorted
	voterIdx map[int]int   // node -> index into voters
	kbits    []*bitset.Set // per voter
	tbits    []*bitset.Set // per voter
	kcounts  []int32
	tcounts  []int32
	bStar    int32
	size     int32 // announced |T|; 0 = no candidate
}

// computeKT fills kbits/tbits per voter and the kcounts/tcounts vectors,
// mirroring exploration steps 4a–4f and decision step 1.
func (sc *seqComp) computeKT(g *graph.Graph, eps float64) {
	k := len(sc.members)
	total := 1 << uint(k)
	sc.kbits = make([]*bitset.Set, len(sc.voters))
	sc.tbits = make([]*bitset.Set, len(sc.voters))
	sc.kcounts = make([]int32, total)
	sc.tcounts = make([]int32, total)

	for i, u := range sc.voters {
		cnt := kMemberCounts(k, func(j int) bool {
			m := int(sc.members[j])
			return m != u && g.HasEdge(u, m)
		})
		kb := bitset.New(total)
		for b := 1; b < total; b++ {
			if meetsK(int(cnt[b]), popcount(b), eps) {
				kb.Add(b)
				sc.kcounts[b]++
			}
		}
		sc.kbits[i] = kb
	}

	// nbrK[b] per voter: sum of K bits over its neighbors that are voters
	// (non-voters never hold a K bit for non-empty subsets).
	for i, u := range sc.voters {
		nbrK := make([]int32, total)
		for _, w := range g.Neighbors(u) {
			j, ok := sc.voterIdx[int(w)]
			if !ok {
				continue
			}
			sc.kbits[j].ForEach(func(b int) { nbrK[b]++ })
		}
		tb := bitset.New(total)
		sc.kbits[i].ForEach(func(b int) {
			if meetsOuterK(int(nbrK[b]), int(sc.kcounts[b]), eps) {
				tb.Add(b)
				sc.tcounts[b]++
			}
		})
		sc.tbits[i] = tb
	}
}
