package core

import (
	"fmt"
	"sort"

	"nearclique/internal/bitset"
	"nearclique/internal/congest"
)

// Protocol phases, in execution order. Phases sample..announce run once
// per boosting version; vote and commit run once at the end over all
// versions' candidates (Section 4.1's boosting wrapper: "a single decision
// stage is run").
const (
	phaseSample = iota
	phaseBFS
	phaseClaim
	phaseCompUp
	phaseCompDown
	phaseShare
	phaseLeafClaim
	phaseKBits
	phaseKSum
	phaseKDown
	phaseTSum
	phaseAnnounce
	phaseVote
	phaseCommit
)

var phaseNames = []string{
	"sample", "bfs", "claim", "compup", "compdown", "share", "leafclaim",
	"kbits", "ksum", "kdown", "tsum", "announce", "vote", "commit",
}

const noParent = int32(-1)

// node is the per-processor protocol state.
type node struct {
	d   *driver
	ctx *congest.Context

	vers []*versionState

	// cands are the announced candidates adjacent to this node, collected
	// across versions for the single decision stage.
	cands map[candKey]candInfo

	label int64
}

// versionState is one boosting version's exploration state.
type versionState struct {
	inS   bool
	sNbrs []int32 // sampled neighbors (ascending, by delivery order)

	// BFS / tree state (sampled nodes only).
	rootID   int64
	rootIdx  int32
	dist     int32
	parent   int32
	children []int32

	// Component discovery (sampled nodes only).
	compMembers []int32 // complete sorted member list after compDown
	upDone      int     // children that finished their compUp streams

	// comps holds one view per adjacent component (non-sampled nodes may
	// have several; sampled nodes exactly one — their own).
	comps map[int32]*compView
}

// compView is everything a participant knows about one component Si.
type compView struct {
	rootIdx int32
	rootID  int64
	size    int32 // |Si|
	members []int32
	k       int // == |Si| once members are complete

	isTreeNode bool
	parent     int32 // tree parent (tree nodes) or parent^{Si} (leaves)

	informer  int32   // which S-neighbor's share stream we accept
	sNbrsHere []int32 // neighbors in Si (share senders)
	claimants []int32 // tree nodes: adjacent non-sampled nodes that claimed us

	// Exploration state. Vectors are indexed by subset index b ∈ [1, 2^k).
	kbits  *bitset.Set // own membership in K_{2ε²}(X_b)
	nbrK   []int32     // Σ over neighbors of their K bits (freed after kdown)
	claimK []int32     // Σ over claimants of their K bits (freed after ksum)
	tbits  *bitset.Set // own membership in T_ε(X_b)

	// Convergecast machinery (tree nodes; reused for ksum then tsum).
	acc      []int32 // accumulated sums
	inCursor []int32 // next expected coordinate per input stream
	inIndex  map[int32]int
	emitCur  int32
	downCur  int32 // kdown processing cursor

	// Root-only results.
	kcounts       []int32
	tcounts       []int32
	bStar         int32
	announcedSize int32
	committed     bool

	// Decision bookkeeping.
	votesNeeded int
	votesGot    int
	abortSeen   bool
	voteDone    bool
}

var _ congest.Proc = (*node)(nil)

func newNode(d *driver, ctx *congest.Context) *node {
	// cands and each version's comps map are allocated lazily: at scale
	// almost every node never sees a candidate or a component.
	return &node{
		d:     d,
		ctx:   ctx,
		vers:  make([]*versionState, d.opts.Versions),
		label: NoLabel,
	}
}

// vs returns the state of the version currently being explored.
func (nd *node) vs() *versionState { return nd.vers[nd.d.version] }

// PhaseStart implements congest.Proc.
func (nd *node) PhaseStart(ctx *congest.Context) {
	switch nd.d.phase {
	case phaseSample:
		nd.startSample(ctx)
	case phaseBFS:
		nd.startBFS(ctx)
	case phaseClaim:
		nd.startClaim(ctx)
	case phaseCompUp:
		nd.startCompUp(ctx)
	case phaseCompDown:
		nd.startCompDown(ctx)
	case phaseShare:
		nd.startShare(ctx)
	case phaseLeafClaim:
		nd.startLeafClaim(ctx)
	case phaseKBits:
		nd.startKBits(ctx)
	case phaseKSum:
		nd.startKSum(ctx)
	case phaseKDown:
		nd.startKDown(ctx)
	case phaseTSum:
		nd.startTSum(ctx)
	case phaseAnnounce:
		nd.startAnnounce(ctx)
	case phaseVote:
		nd.startVote(ctx)
	case phaseCommit:
		nd.startCommit(ctx)
	}
}

// Recv implements congest.Proc.
func (nd *node) Recv(ctx *congest.Context, from congest.NodeID, msg congest.Message) {
	switch m := msg.(type) {
	case msgSampled:
		vs := nd.vs()
		vs.sNbrs = append(vs.sNbrs, int32(from))
	case msgBFSOffer:
		nd.recvOffer(ctx, from, m)
	case msgTreeClaim:
		vs := nd.vs()
		vs.children = append(vs.children, int32(from))
	case msgCompID:
		nd.recvCompID(ctx, m)
	case msgCompDone:
		nd.recvCompDone(ctx)
	case msgShareStart:
		nd.recvShareStart(from, m)
	case msgShareID:
		nd.recvShareID(from, m)
	case msgLeafClaim:
		cv := nd.vs().comps[m.rootIdx]
		cv.claimants = append(cv.claimants, int32(from))
	case msgBitChunk:
		nd.recvBitChunk(ctx, from, m)
	case msgCntChunk:
		nd.recvCntChunk(ctx, from, m)
	case msgAnnounce:
		nd.recvAnnounce(ctx, m)
	case msgVote:
		nd.recvVote(ctx, m.version, m.rootIdx, !m.ack)
	case msgVoteUp:
		nd.recvVote(ctx, m.version, m.rootIdx, m.abort)
	case msgCommit:
		nd.recvCommit(ctx, m)
	default:
		panic(fmt.Sprintf("core: unexpected message %T in phase %s", msg, phaseNames[nd.d.phase]))
	}
}

// --- Sampling stage ---------------------------------------------------

// startSample draws the two-coin refinement of the paper's analysis
// (Section 5.2): coin1 with probability p/2, coin2 with (p−p1)/(1−p1);
// the node joins S iff either is heads, so Pr[v ∈ S] = p exactly.
func (nd *node) startSample(ctx *congest.Context) {
	vs := &versionState{parent: noParent}
	nd.vers[nd.d.version] = vs
	p := nd.d.opts.P
	p1 := p / 2
	p2 := 0.0
	if p1 < 1 {
		p2 = (p - p1) / (1 - p1)
	}
	rng := ctx.Rand()
	c1 := rng.Float64() < p1
	c2 := rng.Float64() < p2 // always drawn, keeping coin streams aligned
	vs.inS = c1 || c2
	if vs.inS {
		ctx.Broadcast(nd.d.wire.sampled())
	}
}

// --- Exploration stage: spanning tree (step 1) ------------------------

func (nd *node) startBFS(ctx *congest.Context) {
	vs := nd.vs()
	if !vs.inS {
		return
	}
	vs.rootID = ctx.ID()
	vs.rootIdx = int32(ctx.Index())
	vs.dist = 0
	vs.parent = noParent
	nd.offerToSampledNeighbors(ctx)
}

func (nd *node) offerToSampledNeighbors(ctx *congest.Context) {
	vs := nd.vs()
	for _, w := range vs.sNbrs {
		ctx.Send(congest.NodeID(w), nd.d.wire.bfsOffer(vs.rootID, vs.rootIdx, vs.dist))
	}
}

func (nd *node) recvOffer(ctx *congest.Context, from congest.NodeID, m msgBFSOffer) {
	vs := nd.vs()
	if !vs.inS {
		return
	}
	if m.rootID < vs.rootID || (m.rootID == vs.rootID && m.dist+1 < vs.dist) {
		vs.rootID = m.rootID
		vs.rootIdx = m.rootIdx
		vs.dist = m.dist + 1
		vs.parent = int32(from)
		nd.offerToSampledNeighbors(ctx)
	}
}

func (nd *node) startClaim(ctx *congest.Context) {
	vs := nd.vs()
	if vs.inS && vs.parent != noParent {
		ctx.Send(congest.NodeID(vs.parent), nd.d.wire.treeClaim())
	}
}

// --- Exploration stage: component discovery (step 2) ------------------

func (nd *node) isRoot() bool {
	vs := nd.vs()
	return vs.inS && vs.parent == noParent
}

func (nd *node) startCompUp(ctx *congest.Context) {
	vs := nd.vs()
	if !vs.inS {
		return
	}
	if nd.isRoot() {
		vs.compMembers = append(vs.compMembers, int32(ctx.Index()))
		return
	}
	ctx.Send(congest.NodeID(vs.parent), nd.d.wire.compID(int32(ctx.Index())))
	if len(vs.children) == 0 {
		ctx.Send(congest.NodeID(vs.parent), nd.d.wire.compDone())
	}
}

func (nd *node) recvCompID(ctx *congest.Context, m msgCompID) {
	vs := nd.vs()
	switch nd.d.phase {
	case phaseCompUp:
		if nd.isRoot() {
			vs.compMembers = append(vs.compMembers, m.idx)
		} else {
			ctx.Send(congest.NodeID(vs.parent), m)
		}
	case phaseCompDown:
		vs.compMembers = append(vs.compMembers, m.idx)
		for _, c := range vs.children {
			ctx.Send(congest.NodeID(c), m)
		}
	default:
		panic("core: compID outside comp phases")
	}
}

func (nd *node) recvCompDone(ctx *congest.Context) {
	vs := nd.vs()
	switch nd.d.phase {
	case phaseCompUp:
		vs.upDone++
		if vs.upDone == len(vs.children) && !nd.isRoot() {
			ctx.Send(congest.NodeID(vs.parent), nd.d.wire.compDone())
		}
	case phaseCompDown:
		for _, c := range vs.children {
			ctx.Send(congest.NodeID(c), nd.d.wire.compDone())
		}
	default:
		panic("core: compDone outside comp phases")
	}
}

func (nd *node) startCompDown(ctx *congest.Context) {
	vs := nd.vs()
	if !nd.isRoot() {
		return
	}
	sort.Slice(vs.compMembers, func(i, j int) bool { return vs.compMembers[i] < vs.compMembers[j] })
	for _, c := range vs.children {
		for _, m := range vs.compMembers {
			ctx.Send(congest.NodeID(c), nd.d.wire.compID(m))
		}
		ctx.Send(congest.NodeID(c), nd.d.wire.compDone())
	}
}

// --- Exploration stage: Comp(v) to all neighbors (step 3) -------------

func (nd *node) startShare(ctx *congest.Context) {
	vs := nd.vs()
	if !vs.inS {
		return
	}
	// Non-root nodes received members in root's sorted order; the root
	// sorted its own copy. Either way compMembers is sorted.
	if vs.comps == nil {
		vs.comps = make(map[int32]*compView)
	}
	cv := &compView{
		rootIdx:    vs.rootIdx,
		rootID:     vs.rootID,
		size:       int32(len(vs.compMembers)),
		members:    vs.compMembers,
		k:          len(vs.compMembers),
		isTreeNode: true,
		parent:     vs.parent,
		informer:   -1,
	}
	vs.comps[vs.rootIdx] = cv
	for _, nb := range ctx.Neighbors() {
		ctx.Send(congest.NodeID(nb), nd.d.wire.shareStart(vs.rootIdx, vs.rootID, cv.size))
		for _, m := range vs.compMembers {
			ctx.Send(congest.NodeID(nb), nd.d.wire.shareID(vs.rootIdx, m))
		}
	}
}

func (nd *node) recvShareStart(from congest.NodeID, m msgShareStart) {
	vs := nd.vs()
	if vs.inS {
		// Sampled nodes are only ever adjacent to their own component.
		return
	}
	cv := vs.comps[m.rootIdx]
	if cv == nil {
		if vs.comps == nil {
			vs.comps = make(map[int32]*compView)
		}
		cv = &compView{
			rootIdx:  m.rootIdx,
			rootID:   m.rootID,
			size:     m.size,
			k:        int(m.size),
			members:  make([]int32, 0, m.size),
			parent:   noParent,
			informer: int32(from),
		}
		vs.comps[m.rootIdx] = cv
	}
	cv.sNbrsHere = append(cv.sNbrsHere, int32(from))
}

func (nd *node) recvShareID(from congest.NodeID, m msgShareID) {
	vs := nd.vs()
	if vs.inS {
		return
	}
	cv := vs.comps[m.rootIdx]
	if cv == nil || cv.informer != int32(from) {
		return // duplicate stream from a second neighbor in the same Si
	}
	cv.members = append(cv.members, m.idx)
}

// startLeafClaim registers each non-sampled participant with one parent
// per adjacent component (deterministically: its smallest S-neighbor in
// that component; the paper allows an arbitrary choice).
func (nd *node) startLeafClaim(ctx *congest.Context) {
	vs := nd.vs()
	if vs.inS {
		return
	}
	for _, cv := range nd.compsOrdered() {
		best := cv.sNbrsHere[0]
		for _, s := range cv.sNbrsHere[1:] {
			if s < best {
				best = s
			}
		}
		cv.parent = best
		ctx.Send(congest.NodeID(best), nd.d.wire.leafClaim(cv.rootIdx))
	}
}

// compsOrdered returns this version's component views sorted by root index
// (map iteration order must never influence the protocol).
func (nd *node) compsOrdered() []*compView {
	return orderedViews(nd.vs())
}

// --- Exploration stage: K membership bits (steps 4a, 4b) --------------

// participates reports whether this node is in Γ(Si): it has at least one
// neighbor among the members. Only participants compute and stream bits.
func (nd *node) participates(ctx *congest.Context, cv *compView) bool {
	if !cv.isTreeNode {
		return true // has an S-neighbor in Si by construction
	}
	self := int32(ctx.Index())
	for _, m := range cv.members {
		if m != self && nd.isNeighbor(ctx, m) {
			return true
		}
	}
	return false
}

func (nd *node) isNeighbor(ctx *congest.Context, v int32) bool {
	nbrs := ctx.Neighbors()
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

func (nd *node) startKBits(ctx *congest.Context) {
	for _, cv := range nd.compsOrdered() {
		nd.computeKBits(ctx, cv)
		if !nd.participates(ctx, cv) {
			continue
		}
		nd.streamBits(ctx, cv, cv.kbits, nil) // to all neighbors
	}
}

// computeKBits evaluates u ∈ K_{2ε²}(X_b) for every subset of cv's members
// via the O(2^k) lowest-bit DP (step 4a).
func (nd *node) computeKBits(ctx *congest.Context, cv *compView) {
	k := cv.k
	self := int32(ctx.Index())
	adj := make([]bool, k)
	for i, m := range cv.members {
		adj[i] = m != self && nd.isNeighbor(ctx, m)
	}
	cnt := kMemberCounts(k, func(i int) bool { return adj[i] })
	eps := nd.d.opts.Epsilon
	total := 1 << uint(k)
	cv.kbits = bitset.New(total)
	for b := 1; b < total; b++ {
		if meetsK(int(cnt[b]), popcount(b), eps) {
			cv.kbits.Add(b)
		}
	}
	cv.nbrK = make([]int32, total)
}

// streamBits chunks a membership vector into frames. If to is nil the
// chunks are broadcast to every neighbor (step 4b); otherwise they go to
// the single destination (the tsum leaf→parent stream).
func (nd *node) streamBits(ctx *congest.Context, cv *compView, bits *bitset.Set, to *int32) {
	w := nd.d.wire
	chunkCap := w.bitChunkCap(cv.k)
	total := 1 << uint(cv.k)
	for off := 1; off < total; off += chunkCap {
		cnt := chunkCap
		if off+cnt > total {
			cnt = total - off
		}
		var payload uint64
		for i := 0; i < cnt; i++ {
			if bits.Contains(off + i) {
				payload |= 1 << uint(i)
			}
		}
		m := w.bitChunk(cv.k, cv.rootIdx, int32(off), cnt, payload)
		if to != nil {
			ctx.Send(congest.NodeID(*to), m)
		} else {
			ctx.Broadcast(m)
		}
	}
}

func (nd *node) recvBitChunk(ctx *congest.Context, from congest.NodeID, m msgBitChunk) {
	vs := nd.vs()
	cv := vs.comps[m.rootIdx]
	if cv == nil {
		return // not in Γ(Si): the bits are irrelevant to us (see DESIGN.md)
	}
	switch nd.d.phase {
	case phaseKBits:
		// Accumulate neighbors' K bits: nbrK[b] = |Γ(u) ∩ K_{2ε²}(X_b)|
		// restricted to reporters, which is exactly |Γ(u) ∩ Y_b|.
		isClaimant := cv.isTreeNode && containsInt32(cv.claimants, int32(from))
		if isClaimant {
			nd.ensureClaimK(cv)
		}
		for i := 0; i < int(m.count); i++ {
			if m.bits&(1<<uint(i)) != 0 {
				b := int(m.offset) + i
				cv.nbrK[b]++
				if isClaimant {
					cv.claimK[b]++
				}
			}
		}
	case phaseTSum:
		// A claimant's T bits arriving for the T-size convergecast.
		nd.absorbStream(ctx, cv, int32(from), func(i int, _ int32) int32 {
			if m.bits&(1<<uint(i)) != 0 {
				return 1
			}
			return 0
		}, int(m.offset), int(m.count))
	default:
		panic("core: bit chunk outside kbits/tsum")
	}
}

func containsInt32(xs []int32, v int32) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// --- Exploration stage: |K| convergecast and broadcast (4c, 4d) -------

// initConvergecast prepares the pipelined sum machinery: base is this
// node's own contribution (plus, for ksum, the pre-collected claimant
// sums); inputs are the streams we must wait for.
func (cv *compView) initConvergecast(base []int32, inputs []int32) {
	cv.acc = base
	cv.inIndex = make(map[int32]int, len(inputs))
	cv.inCursor = make([]int32, len(inputs))
	for i, in := range inputs {
		cv.inIndex[in] = i
		cv.inCursor[i] = 1
	}
	cv.emitCur = 1
}

func (nd *node) startKSum(ctx *congest.Context) {
	for _, cv := range nd.compsOrdered() {
		if !cv.isTreeNode {
			continue
		}
		total := 1 << uint(cv.k)
		base := make([]int32, total)
		for b := 1; b < total; b++ {
			if cv.kbits.Contains(b) {
				base[b] = 1
			}
		}
		if cv.claimK != nil {
			for b := 1; b < total; b++ {
				base[b] += cv.claimK[b]
			}
			cv.claimK = nil
		}
		// Tree children are the only asynchronous inputs: claimant K bits
		// arrived fully during the kbits phase.
		vs := nd.vs()
		cv.initConvergecast(base, vs.children)
		nd.tryEmit(ctx, cv)
	}
}

// claimK accumulation needs the claimant list before the kbits phase; the
// leafclaim phase guarantees that. computeKBits allocates nbrK; claimK is
// allocated lazily here at first need.
func (nd *node) ensureClaimK(cv *compView) {
	if cv.claimK == nil {
		cv.claimK = make([]int32, 1<<uint(cv.k))
	}
}

// absorbStream integrates one input stream's consecutive coordinates into
// acc and advances the pipelined emission. val(i, old) returns the value
// to add for the i-th coordinate of the chunk.
func (nd *node) absorbStream(ctx *congest.Context, cv *compView, from int32, val func(i int, old int32) int32, offset, count int) {
	idx, ok := cv.inIndex[from]
	if !ok {
		panic("core: stream from unexpected input")
	}
	if cv.inCursor[idx] != int32(offset) {
		panic(fmt.Sprintf("core: out-of-order stream: expected %d got %d", cv.inCursor[idx], offset))
	}
	for i := 0; i < count; i++ {
		cv.acc[offset+i] += val(i, cv.acc[offset+i])
	}
	cv.inCursor[idx] = int32(offset + count)
	nd.tryEmit(ctx, cv)
}

// tryEmit forwards every fully-aggregated coordinate prefix to the parent
// (pipelined convergecast; the root just accumulates).
func (nd *node) tryEmit(ctx *congest.Context, cv *compView) {
	total := int32(1) << uint(cv.k)
	ready := total
	for _, c := range cv.inCursor {
		if c < ready {
			ready = c
		}
	}
	if ready <= cv.emitCur {
		return
	}
	if cv.parent == noParent {
		cv.emitCur = ready
		return
	}
	w := nd.d.wire
	chunk := int32(w.cntChunkCap(cv.k))
	for cv.emitCur < ready {
		cnt := chunk
		if cv.emitCur+cnt > ready {
			cnt = ready - cv.emitCur
		}
		vals := make([]int32, cnt)
		copy(vals, cv.acc[cv.emitCur:cv.emitCur+cnt])
		ctx.Send(congest.NodeID(cv.parent), w.cntChunk(cv.k, cv.rootIdx, cv.emitCur, vals))
		cv.emitCur += cnt
	}
}

func (nd *node) recvCntChunk(ctx *congest.Context, from congest.NodeID, m msgCntChunk) {
	vs := nd.vs()
	cv := vs.comps[m.rootIdx]
	if cv == nil {
		panic("core: count chunk for unknown component")
	}
	switch nd.d.phase {
	case phaseKSum, phaseTSum:
		nd.absorbStream(ctx, cv, int32(from), func(i int, _ int32) int32 { return m.vals[i] }, int(m.offset), len(m.vals))
	case phaseKDown:
		nd.processKDownChunk(ctx, cv, m)
	default:
		panic("core: count chunk outside convergecast phases")
	}
}

// startKDown: the root streams |K_{2ε²}(X_b)| down the tree and to the
// claimants (step 4d); every participant evaluates its T membership on the
// fly (step 4f) and tree nodes forward the stream.
func (nd *node) startKDown(ctx *congest.Context) {
	for _, cv := range nd.compsOrdered() {
		if !cv.isTreeNode {
			continue
		}
		if cv.parent == noParent {
			cv.kcounts = cv.acc // convergecast result
			cv.acc = nil
			cv.tbits = bitset.New(1 << uint(cv.k))
			total := 1 << uint(cv.k)
			eps := nd.d.opts.Epsilon
			for b := 1; b < total; b++ {
				if cv.kbits.Contains(b) && meetsOuterK(int(cv.nbrK[b]), int(cv.kcounts[b]), eps) {
					cv.tbits.Add(b)
				}
			}
			cv.nbrK = nil
			nd.streamCountsDown(ctx, cv, cv.kcounts)
		} else {
			cv.acc = nil
			cv.tbits = bitset.New(1 << uint(cv.k))
			cv.downCur = 1
		}
	}
	// Non-tree participants also prepare to consume the downstream counts.
	for _, cv := range nd.compsOrdered() {
		if !cv.isTreeNode {
			cv.tbits = bitset.New(1 << uint(cv.k))
			cv.downCur = 1
		}
	}
}

func (nd *node) streamCountsDown(ctx *congest.Context, cv *compView, counts []int32) {
	w := nd.d.wire
	vs := nd.vs()
	chunk := w.cntChunkCap(cv.k)
	total := 1 << uint(cv.k)
	dests := cv.claimants
	if cv.isTreeNode {
		dests = append(append([]int32{}, vs.children...), cv.claimants...)
	}
	for off := 1; off < total; off += chunk {
		cnt := chunk
		if off+cnt > total {
			cnt = total - off
		}
		vals := counts[off : off+cnt]
		for _, dst := range dests {
			ctx.Send(congest.NodeID(dst), w.cntChunk(cv.k, cv.rootIdx, int32(off), vals))
		}
	}
}

func (nd *node) processKDownChunk(ctx *congest.Context, cv *compView, m msgCntChunk) {
	if cv.downCur != m.offset {
		panic("core: kdown stream out of order")
	}
	eps := nd.d.opts.Epsilon
	for i, cnt := range m.vals {
		b := int(m.offset) + i
		if cv.kbits.Contains(b) && meetsOuterK(int(cv.nbrK[b]), int(cnt), eps) {
			cv.tbits.Add(b)
		}
	}
	cv.downCur += int32(len(m.vals))
	if cv.isTreeNode {
		// Forward to subtree and claimants.
		vs := nd.vs()
		for _, c := range vs.children {
			ctx.Send(congest.NodeID(c), m)
		}
		for _, c := range cv.claimants {
			ctx.Send(congest.NodeID(c), m)
		}
	}
	if int(cv.downCur) == 1<<uint(cv.k) {
		cv.nbrK = nil // everything needed from neighbors is consumed
	}
}

// --- Decision stage: |T| convergecast (decision step 1) ----------------

func (nd *node) startTSum(ctx *congest.Context) {
	for _, cv := range nd.compsOrdered() {
		if !cv.isTreeNode {
			// Leaf participant: stream T bits to the component parent.
			nd.streamBits(ctx, cv, cv.tbits, &cv.parent)
			continue
		}
		total := 1 << uint(cv.k)
		base := make([]int32, total)
		for b := 1; b < total; b++ {
			if cv.tbits.Contains(b) {
				base[b] = 1
			}
		}
		vs := nd.vs()
		inputs := make([]int32, 0, len(vs.children)+len(cv.claimants))
		inputs = append(inputs, vs.children...)
		inputs = append(inputs, cv.claimants...)
		cv.initConvergecast(base, inputs)
		nd.tryEmit(ctx, cv)
	}
}

// --- Decision stage: announce (step 2) ---------------------------------

func (nd *node) startAnnounce(ctx *congest.Context) {
	for _, cv := range nd.compsOrdered() {
		if !cv.isTreeNode || cv.parent != noParent {
			continue
		}
		cv.tcounts = cv.acc
		cv.acc = nil
		cv.bStar = argmaxSubset(cv.tcounts)
		size := int32(0)
		if cv.bStar > 0 {
			size = cv.tcounts[cv.bStar]
		}
		minSize := int32(nd.d.opts.MinSize)
		if minSize < 1 {
			minSize = 1
		}
		if size < minSize {
			continue // no candidate from this component
		}
		cv.announcedSize = size
		key := candKey{rootIdx: cv.rootIdx, version: int32(nd.d.version)}
		if nd.cands == nil {
			nd.cands = make(map[candKey]candInfo)
		}
		nd.cands[key] = candInfo{rootID: cv.rootID, size: size}
		nd.forwardAnnounce(ctx, cv, nd.d.wire.announce(cv.rootIdx, int32(nd.d.version), cv.rootID, size))
	}
}

func (nd *node) forwardAnnounce(ctx *congest.Context, cv *compView, m msgAnnounce) {
	vs := nd.vers[m.version]
	for _, c := range vs.children {
		ctx.Send(congest.NodeID(c), m)
	}
	for _, c := range cv.claimants {
		ctx.Send(congest.NodeID(c), m)
	}
}

func (nd *node) recvAnnounce(ctx *congest.Context, m msgAnnounce) {
	vs := nd.vers[m.version]
	cv := vs.comps[m.rootIdx]
	if cv == nil {
		panic("core: announce for unknown component")
	}
	cv.announcedSize = m.size
	if nd.cands == nil {
		nd.cands = make(map[candKey]candInfo)
	}
	nd.cands[candKey{rootIdx: m.rootIdx, version: m.version}] = candInfo{rootID: m.rootID, size: m.size}
	if cv.isTreeNode {
		nd.forwardAnnounce(ctx, cv, m)
	}
}

// --- Decision stage: vote (step 3) --------------------------------------

// bestCandidate returns the winning candidate under the paper's rule
// (largest size, ties toward the largest root ID), iterating candidates in
// a deterministic order.
func (nd *node) bestCandidate() (candKey, bool) {
	keys := make([]candKey, 0, len(nd.cands))
	for k := range nd.cands {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].version != keys[j].version {
			return keys[i].version < keys[j].version
		}
		return keys[i].rootIdx < keys[j].rootIdx
	})
	var best candKey
	found := false
	for _, k := range keys {
		c := nd.cands[k]
		if !found || betterCandidate(c.size, c.rootID, k.version,
			nd.cands[best].size, nd.cands[best].rootID, best.version) {
			best = k
			found = true
		}
	}
	return best, found
}

func (nd *node) startVote(ctx *congest.Context) {
	best, haveBest := nd.bestCandidate()
	for ver, vs := range nd.vers {
		if vs == nil {
			continue
		}
		for _, cv := range orderedViews(vs) {
			key := candKey{rootIdx: cv.rootIdx, version: int32(ver)}
			ack := haveBest && key == best
			if cv.isTreeNode {
				cv.votesNeeded = len(vs.children) + len(cv.claimants)
				if !ack {
					cv.abortSeen = true
				}
				nd.maybeFinishVote(ctx, int32(ver), cv)
			} else {
				ctx.Send(congest.NodeID(cv.parent), nd.d.wire.vote(cv.rootIdx, int32(ver), ack))
			}
		}
	}
}

func orderedViews(vs *versionState) []*compView {
	// The overwhelmingly common cases — background nodes far from any
	// sampled component — must not pay for sorting machinery.
	switch len(vs.comps) {
	case 0:
		return nil
	case 1:
		for _, cv := range vs.comps {
			return []*compView{cv}
		}
	}
	out := make([]*compView, 0, len(vs.comps))
	for _, cv := range vs.comps {
		out = append(out, cv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].rootIdx < out[j].rootIdx })
	return out
}

func (nd *node) recvVote(ctx *congest.Context, version, rootIdx int32, abort bool) {
	vs := nd.vers[version]
	cv := vs.comps[rootIdx]
	cv.votesGot++
	if abort {
		cv.abortSeen = true
	}
	nd.maybeFinishVote(ctx, version, cv)
}

func (nd *node) maybeFinishVote(ctx *congest.Context, version int32, cv *compView) {
	if cv.voteDone || cv.votesGot < cv.votesNeeded {
		return
	}
	cv.voteDone = true
	if cv.parent != noParent {
		ctx.Send(congest.NodeID(cv.parent), nd.d.wire.voteUp(cv.rootIdx, version, cv.abortSeen))
		return
	}
	// Root: final decision.
	cv.committed = cv.announcedSize > 0 && !cv.abortSeen
}

// --- Decision stage: commit (step 4) ------------------------------------

// candidateLabel packs (root protocol ID, version) into a single unique
// O(log n)-bit label so that boosted runs where the same root wins twice
// stay distinguishable.
func (nd *node) candidateLabel(rootID int64, version int32) int64 {
	return rootID*int64(nd.d.opts.Versions) + int64(version)
}

func (nd *node) startCommit(ctx *congest.Context) {
	for ver, vs := range nd.vers {
		if vs == nil {
			continue
		}
		for _, cv := range orderedViews(vs) {
			if !cv.isTreeNode || cv.parent != noParent || !cv.committed {
				continue
			}
			m := nd.d.wire.commit(cv.k, cv.rootIdx, int32(ver), cv.bStar)
			nd.applyCommit(cv, m)
			for _, c := range vs.children {
				ctx.Send(congest.NodeID(c), m)
			}
			for _, c := range cv.claimants {
				ctx.Send(congest.NodeID(c), m)
			}
		}
	}
}

func (nd *node) recvCommit(ctx *congest.Context, m msgCommit) {
	vs := nd.vers[m.version]
	cv := vs.comps[m.rootIdx]
	cv.bStar = m.bStar
	cv.committed = true
	nd.applyCommit(cv, m)
	if cv.isTreeNode {
		for _, c := range vs.children {
			ctx.Send(congest.NodeID(c), m)
		}
		for _, c := range cv.claimants {
			ctx.Send(congest.NodeID(c), m)
		}
	}
}

func (nd *node) applyCommit(cv *compView, m msgCommit) {
	if cv.tbits != nil && cv.tbits.Contains(int(m.bStar)) {
		nd.label = nd.candidateLabel(cv.rootID, m.version)
	}
}
