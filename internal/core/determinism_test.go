package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"nearclique/internal/congest"
	"nearclique/internal/gen"
	"nearclique/internal/graph"
)

// Full-protocol determinism: Find must produce byte-identical results —
// labels, candidates, sample sizes, and the complete phase transcript —
// across engines, worker counts, GOMAXPROCS settings, and the
// asynchronous executor, and all of them must agree with the sequential
// reference.

// resultTranscript canonicalizes a Result. includeMetrics=false drops the
// simulator metrics (the sequential path has none; async differs in
// round/overhead counters by design).
func resultTranscript(res *Result, includeMetrics bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "labels=%v\nsamples=%v\nmaxcomp=%d\n",
		res.Labels, res.SampleSizes, res.MaxComponent)
	for _, c := range res.Candidates {
		fmt.Fprintf(&b, "cand label=%d ver=%d members=%v x=%v density=%.9f\n",
			c.Label, c.Version, c.Members, c.SubsetX, c.Density)
	}
	if includeMetrics {
		m := res.Metrics
		fmt.Fprintf(&b, "rounds=%d frames=%d bits=%d maxframe=%d\n",
			m.Rounds, m.Frames, m.Bits, m.MaxFrameBits)
		for _, ph := range m.Phases {
			fmt.Fprintf(&b, "phase %s: rounds=%d frames=%d bits=%d\n",
				ph.Name, ph.Rounds, ph.Frames, ph.Bits)
		}
	}
	return b.String()
}

func determinismInstances() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"planted": gen.PlantedNearClique(400, 120, 0.01, 0.02, 5).Graph,
		"sparse":  gen.SparsePlantedNearClique(400, 120, 0.01, 8, 5).Graph,
		"er":      gen.ErdosRenyi(300, 0.05, 6),
	}
}

func TestFindTranscriptAcrossEnginesAndWorkers(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	base := Options{Epsilon: 0.25, ExpectedSample: 6, Seed: 3, Versions: 2}
	for name, g := range determinismInstances() {
		var want string
		for _, procs := range []int{1, 2, 8} {
			runtime.GOMAXPROCS(procs)
			for _, engine := range []congest.Engine{congest.EngineSharded, congest.EngineLegacy} {
				for _, par := range []int{1, 4} {
					opts := base
					opts.Engine = engine
					opts.Parallelism = par
					res, err := Find(g, opts)
					if err != nil {
						t.Fatal(err)
					}
					got := resultTranscript(res, true)
					if want == "" {
						want = got
					} else if got != want {
						t.Fatalf("%s: transcript diverged at GOMAXPROCS=%d engine=%v par=%d",
							name, procs, engine, par)
					}
				}
			}
		}
	}
}

func TestFindMatchesSequentialOnBothEngines(t *testing.T) {
	base := Options{Epsilon: 0.25, ExpectedSample: 7, Seed: 11, Versions: 2}
	for name, g := range determinismInstances() {
		seq, err := FindSequential(g, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, engine := range []congest.Engine{congest.EngineSharded, congest.EngineLegacy} {
			opts := base
			opts.Engine = engine
			dist, err := Find(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := resultTranscript(dist, false), resultTranscript(seq, false); a != b {
				t.Fatalf("%s engine=%v: distributed vs sequential:\n%s\nvs\n%s", name, engine, a, b)
			}
		}
	}
}

func TestFindAsyncMatchesSyncOnShardedEngine(t *testing.T) {
	base := Options{Epsilon: 0.25, ExpectedSample: 6, Seed: 17}
	for name, g := range determinismInstances() {
		sync, err := Find(g, base)
		if err != nil {
			t.Fatal(err)
		}
		opts := base
		opts.Async = true
		async, err := Find(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := resultTranscript(sync, false), resultTranscript(async, false); a != b {
			t.Fatalf("%s: async outputs differ from sync:\n%s\nvs\n%s", name, a, b)
		}
		if sync.Metrics.Frames != async.Metrics.Frames || sync.Metrics.Bits != async.Metrics.Bits {
			t.Fatalf("%s: async frames/bits differ from sync", name)
		}
	}
}

// TestFindContextCancelDeterministicPartialMetrics pins the full-protocol
// cancellation contract: canceling between phases (via the Progress hook,
// which fires deterministically) returns a wrapped context.Canceled with
// all-⊥ labels and valid partial metrics, and the partial metric
// transcript is bit-identical across repeated runs and across engines.
func TestFindContextCancelDeterministicPartialMetrics(t *testing.T) {
	const cancelAfterStep = 5
	g := gen.PlantedNearClique(400, 120, 0.01, 0.02, 5).Graph
	run := func(engine congest.Engine) (string, *Result, error) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		res, err := FindContext(ctx, g, Options{
			Epsilon: 0.25, ExpectedSample: 6, Seed: 3, Versions: 2, Engine: engine,
			Progress: func(p Progress) {
				if p.Step == cancelAfterStep {
					cancel()
				}
			},
		})
		return resultTranscript(res, true), res, err
	}
	var want string
	for _, engine := range []congest.Engine{congest.EngineSharded, congest.EngineLegacy} {
		a, res, errA := run(engine)
		b, _, errB := run(engine)
		if !errors.Is(errA, context.Canceled) || !errors.Is(errB, context.Canceled) {
			t.Fatalf("engine %v: want wrapped context.Canceled, got %v / %v", engine, errA, errB)
		}
		for i, l := range res.Labels {
			if l != NoLabel {
				t.Fatalf("engine %v: node %d labeled %d in an aborted run", engine, i, l)
			}
		}
		if len(res.Metrics.Phases) == 0 || res.Metrics.Rounds == 0 {
			t.Fatalf("engine %v: canceled run carries no partial metrics", engine)
		}
		if a != b {
			t.Fatalf("engine %v: repeated canceled runs differ:\n%s\nvs\n%s", engine, a, b)
		}
		if want == "" {
			want = a
		} else if a != want {
			t.Fatalf("canceled partial transcripts differ across engines:\n%s\nvs\n%s", a, want)
		}
	}
}

// TestFindSequentialCancelBetweenVersions pins the sequential engine's
// cancellation points: the Progress hook after version 0 cancels, version
// 1 never runs, and the partial result still carries version 0's sample
// size.
func TestFindSequentialCancelBetweenVersions(t *testing.T) {
	g := gen.PlantedNearClique(400, 120, 0.01, 0.02, 5).Graph
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := FindSequentialContext(ctx, g, Options{
		Epsilon: 0.25, ExpectedSample: 6, Seed: 3, Versions: 3,
		Progress: func(p Progress) {
			if p.Version == 0 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
	if res.SampleSizes[0] == 0 {
		t.Fatal("version 0 sample size missing from partial result")
	}
	if res.SampleSizes[1] != 0 || res.SampleSizes[2] != 0 {
		t.Fatalf("versions after the cancellation point ran: %v", res.SampleSizes)
	}
}

// TestFindRepeatableExactly double-checks that repeated runs share even
// the unexported engine state trajectory (via reflect.DeepEqual on the
// full public result).
func TestFindRepeatableExactly(t *testing.T) {
	g := gen.SparsePlantedNearClique(500, 150, 0.01, 10, 9).Graph
	opts := Options{Epsilon: 0.25, ExpectedSample: 6, Seed: 4, Versions: 3}
	a, err := Find(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Find(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical runs produced different results")
	}
}
