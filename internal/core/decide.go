package core

import "nearclique/internal/graph"

// This file holds the component-building and decision-stage code shared
// verbatim by the sequential replay, the frontier engine, and the cached
// search probes. Sharing it is the parity argument: the engines differ
// only in how they *discover* components and voters (serial BFS vs
// 64-seed cluster floods); everything downstream of discovery — root
// election, K/T thresholds, argmax, voting, commit, labeling — is one
// implementation.

// newSeqComp fills a component's identity fields: the sorted int32
// member list and the minimum-protocol-ID root (the spanning-tree root
// the distributed protocol elects).
func newSeqComp(ids []int64, members []int, ver int) *seqComp {
	sc := &seqComp{version: ver}
	sc.members = make([]int32, len(members))
	rootIdx, rootID := members[0], ids[members[0]]
	for i, m := range members {
		sc.members[i] = int32(m)
		if ids[m] < rootID {
			rootIdx, rootID = m, ids[m]
		}
	}
	sc.rootIdx = int32(rootIdx)
	sc.rootID = rootID
	return sc
}

// finish computes the component's K/T tables at ε and derives its
// announced candidate: the argmax subset and its size, zero when the
// best subset misses the minimum size.
func (sc *seqComp) finish(g *graph.Graph, eps float64, minSizeOpt int) {
	sc.computeKT(g, eps)
	sc.bStar = argmaxSubset(sc.tcounts)
	minSize := int32(minSizeOpt)
	if minSize < 1 {
		minSize = 1
	}
	if sc.bStar > 0 && sc.tcounts[sc.bStar] >= minSize {
		sc.size = sc.tcounts[sc.bStar]
	}
}

// decideAndCommit runs the decision stage over the collected components
// of all versions: every voter acks its best adjacent candidate and
// aborts the rest; a candidate commits iff no adjacent voter aborted;
// committed members receive their labels and the candidate list is
// finalized into res. The ack counting is order-free (increments into a
// map), so the stage is deterministic regardless of component or voter
// visit order.
func decideAndCommit(g *graph.Graph, opts Options, comps []*seqComp, res *Result) {
	type voterCand struct {
		sc  *seqComp
		key candKey
	}
	adj := make(map[int][]voterCand)
	for _, sc := range comps {
		key := candKey{rootIdx: sc.rootIdx, version: int32(sc.version)}
		for _, u := range sc.voters {
			adj[u] = append(adj[u], voterCand{sc: sc, key: key})
		}
	}
	acked := make(map[candKey]int) // candidate -> ack count
	for u, cands := range adj {
		_ = u
		bestI := -1
		for i, c := range cands {
			if c.sc.size == 0 {
				continue
			}
			if bestI < 0 || betterCandidate(c.sc.size, c.sc.rootID, c.key.version,
				cands[bestI].sc.size, cands[bestI].sc.rootID, cands[bestI].key.version) {
				bestI = i
			}
		}
		if bestI >= 0 {
			acked[cands[bestI].key]++
		}
	}

	var out []Candidate
	for _, sc := range comps {
		key := candKey{rootIdx: sc.rootIdx, version: int32(sc.version)}
		if sc.size == 0 || acked[key] != len(sc.voters) {
			continue
		}
		label := sc.rootID*int64(opts.Versions) + int64(sc.version)
		var membersOut []int
		for i, u := range sc.voters {
			if sc.tbits[i].Contains(int(sc.bStar)) {
				res.Labels[u] = label
				membersOut = append(membersOut, u)
			}
		}
		out = append(out, Candidate{
			Label:   label,
			Version: sc.version,
			Members: membersOut,
			SubsetX: decodeSubset(sc.members, sc.bStar),
		})
	}
	res.Candidates = finalizeCandidates(g, out)
}
