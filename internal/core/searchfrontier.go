package core

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"nearclique/internal/bitset"
	"nearclique/internal/graph"
)

// This file is the frontier engine's ε bisection: Solver.Search's
// execution path for the frontier (and auto) engine. The observation
// that makes it fast: the sampling coins depend only on (seed, node,
// version) — a probe never draws a coin that depends on ε — so every
// probe of the bisection shares the same samples, the same components,
// the same voters, and the same member adjacency. SearchFrontierContext
// therefore runs the traversal ONCE (64-seed cluster floods over the
// CSR arena, via collectComps), caches the ε-invariant state, and
// re-evaluates only the K/T thresholds and the decision stage per
// probe; the full Result is materialized once, for the winning ε.
// Detection and the returned Result are bit-identical to running
// SearchContext (pinned by the search parity suite) — this path changes
// only what a probe costs.

// SearchFrontier is SearchFrontierContext without cancellation.
func SearchFrontier(g *graph.Graph, so SearchOptions) (float64, *Result, error) {
	return SearchFrontierContext(context.Background(), g, so)
}

// SearchFrontierContext bisects over ε with cached frontier probes; see
// the file comment. Cancellation is observed between probes and inside
// the shared traversal; the error wraps the context error.
func SearchFrontierContext(ctx context.Context, g *graph.Graph, so SearchOptions) (float64, *Result, error) {
	so, need, err := so.normalized(g.N())
	if err != nil {
		return 0, nil, err
	}
	scratch := getSeqScratch()
	defer putSeqScratch(scratch)
	cache, err := buildSearchCache(ctx, g, so, need, scratch)
	if err != nil {
		return 0, nil, err
	}

	probe := func(eps float64) (bool, error) {
		if err := ctx.Err(); err != nil {
			return false, fmt.Errorf("core: frontier search interrupted: %w", err)
		}
		return cache.probe(eps), nil
	}
	lo, hi := so.EpsMin, so.EpsMax
	ok, err := probe(hi)
	if err != nil {
		return 0, nil, err
	}
	if !ok {
		return 0, nil, ErrNotFound
	}
	bestEps := hi
	for step := 0; step < so.Steps; step++ {
		mid := (lo + hi) / 2
		ok, err := probe(mid)
		if err != nil {
			return 0, nil, err
		}
		if ok {
			hi, bestEps = mid, mid
		} else {
			lo = mid
		}
	}
	return bestEps, cache.materialize(bestEps), nil
}

// searchCache is the ε-invariant state shared by every probe of one
// bisection, plus the per-probe buffers that make a probe (nearly)
// allocation-free: threshold tables and ack counters are zeroed, never
// reallocated.
type searchCache struct {
	g    *graph.Graph
	opts Options // resolved probe options (Epsilon field unused)
	need int

	sampleSizes  []int
	maxComponent int
	failed       bool // an oversized component fails every probe identically

	comps      []*seqComp
	cc         []*compCache
	voterLists [][]int32 // distinct voter -> adjacent comp indices

	acked   []int32 // per-probe ack counters, indexed like comps
	members []int   // per-probe buffer for the density check
}

// compCache is one component's ε-invariant adjacency: the kMemberCounts
// DP table per voter (the only input the K thresholds need) and each
// voter's neighbors-that-are-voters (the only input the T thresholds
// need), plus the nbrK accumulation buffer reused across probes.
type compCache struct {
	cnts      [][]uint8
	nbrVoters [][]int32
	nbrK      []int32
}

// buildSearchCache runs the shared traversal and captures everything a
// probe needs. A context error aborts (wrapped); an oversized component
// marks the cache failed — the condition is ε-invariant, so it fails
// every probe exactly as it fails every SearchContext probe.
func buildSearchCache(ctx context.Context, g *graph.Graph, so SearchOptions, need int, scratch *seqScratch) (*searchCache, error) {
	opts, err := Options{
		Epsilon:        so.EpsMax, // any valid ε: the traversal draws no ε-dependent state
		ExpectedSample: so.ExpectedSample,
		Seed:           so.Seed,
		Versions:       so.Versions,
		MinSize:        need,
	}.validated(g.N())
	if err != nil {
		return nil, err
	}
	c := &searchCache{g: g, opts: opts, need: need}
	res := &Result{SampleSizes: make([]int, opts.Versions)}
	ft := newFlightTrace(so.Flight)
	comps, err := collectComps(ctx, g, opts, scratch, ft, res, func(sc *seqComp) {
		c.cc = append(c.cc, newCompCache(g, sc))
	})
	c.sampleSizes, c.maxComponent = res.SampleSizes, res.MaxComponent
	if err != nil {
		if errors.Is(err, ErrComponentTooLarge) {
			c.failed = true
			return c, nil
		}
		return nil, err
	}
	c.comps = comps

	// Decision-stage adjacency, built in first-appearance order (a
	// deterministic order, though none is needed: ack counting is
	// order-free and the per-voter best is a strict total order).
	idx := make(map[int]int)
	for ci, sc := range comps {
		for _, u := range sc.voters {
			j, ok := idx[u]
			if !ok {
				j = len(c.voterLists)
				idx[u] = j
				c.voterLists = append(c.voterLists, nil)
			}
			c.voterLists[j] = append(c.voterLists[j], int32(ci))
		}
	}
	c.acked = make([]int32, len(comps))
	return c, nil
}

// newCompCache captures one component's ε-invariant adjacency — the
// same member-adjacency predicate and neighbor-voter scan computeKT
// performs, evaluated once instead of once per probe — and sizes the
// component's reusable threshold buffers.
func newCompCache(g *graph.Graph, sc *seqComp) *compCache {
	k := len(sc.members)
	total := 1 << uint(k)
	cc := &compCache{
		cnts:      make([][]uint8, len(sc.voters)),
		nbrVoters: make([][]int32, len(sc.voters)),
		nbrK:      make([]int32, total),
	}
	for i, u := range sc.voters {
		cc.cnts[i] = kMemberCounts(k, func(j int) bool {
			m := int(sc.members[j])
			return m != u && g.HasEdge(u, m)
		})
		var nv []int32
		for _, w := range g.Neighbors(u) {
			if j, ok := sc.voterIdx[int(w)]; ok {
				nv = append(nv, int32(j))
			}
		}
		cc.nbrVoters[i] = nv
	}
	sc.kbits = make([]*bitset.Set, len(sc.voters))
	sc.tbits = make([]*bitset.Set, len(sc.voters))
	for i := range sc.voters {
		sc.kbits[i] = bitset.New(total)
		sc.tbits[i] = bitset.New(total)
	}
	sc.kcounts = make([]int32, total)
	sc.tcounts = make([]int32, total)
	return cc
}

// evaluate recomputes every component's K/T tables and announced size
// at ε, into the cached buffers — the same thresholds computeKT
// applies, fed from the cached adjacency.
func (c *searchCache) evaluate(eps float64) {
	minSize := int32(c.need)
	for ci, sc := range c.comps {
		cc := c.cc[ci]
		total := len(sc.kcounts)
		for b := range sc.kcounts {
			sc.kcounts[b] = 0
		}
		for b := range sc.tcounts {
			sc.tcounts[b] = 0
		}
		for i := range sc.voters {
			kb := sc.kbits[i]
			kb.Clear()
			cnt := cc.cnts[i]
			for b := 1; b < total; b++ {
				if meetsK(int(cnt[b]), popcount(b), eps) {
					kb.Add(b)
					sc.kcounts[b]++
				}
			}
		}
		// Word loops instead of ForEach closures: a probe runs this for
		// every voter, and closure-free iteration keeps the probe
		// allocation-flat (pinned by the allocs-per-probe benchmark).
		for i := range sc.voters {
			nbrK := cc.nbrK
			for b := range nbrK {
				nbrK[b] = 0
			}
			for _, j := range cc.nbrVoters[i] {
				kb := sc.kbits[j]
				for wi, wc := 0, kb.WordCount(); wi < wc; wi++ {
					for w := kb.Word(wi); w != 0; w &= w - 1 {
						nbrK[wi*64+bits.TrailingZeros64(w)]++
					}
				}
			}
			tb := sc.tbits[i]
			tb.Clear()
			kb := sc.kbits[i]
			for wi, wc := 0, kb.WordCount(); wi < wc; wi++ {
				for w := kb.Word(wi); w != 0; w &= w - 1 {
					b := wi*64 + bits.TrailingZeros64(w)
					if meetsOuterK(int(nbrK[b]), int(sc.kcounts[b]), eps) {
						tb.Add(b)
						sc.tcounts[b]++
					}
				}
			}
		}
		sc.bStar = argmaxSubset(sc.tcounts)
		sc.size = 0
		if sc.bStar > 0 && sc.tcounts[sc.bStar] >= minSize {
			sc.size = sc.tcounts[sc.bStar]
		}
	}
}

// bestCommitted runs the decision stage over the evaluated components
// and returns the index of the best committed one in the finalized
// candidate ordering (size desc, label asc, version asc), or -1.
func (c *searchCache) bestCommitted() int {
	acked := c.acked
	for i := range acked {
		acked[i] = 0
	}
	for _, list := range c.voterLists {
		best := int32(-1)
		for _, ci := range list {
			sc := c.comps[ci]
			if sc.size == 0 {
				continue
			}
			if best < 0 || betterCandidate(sc.size, sc.rootID, int32(sc.version),
				c.comps[best].size, c.comps[best].rootID, int32(c.comps[best].version)) {
				best = ci
			}
		}
		if best >= 0 {
			acked[best]++
		}
	}
	bestCi := -1
	for ci, sc := range c.comps {
		if sc.size == 0 || int(acked[ci]) != len(sc.voters) {
			continue
		}
		if bestCi < 0 || candidateOrderBefore(sc, c.comps[bestCi], c.opts.Versions) {
			bestCi = ci
		}
	}
	return bestCi
}

// candidateOrderBefore reports whether a precedes b in the finalized
// candidate ordering: size (= member count) descending, then label
// ascending, then version ascending — the sort finalizeCandidates
// applies, so the probe's "best" is exactly Result.Best().
func candidateOrderBefore(a, b *seqComp, versions int) bool {
	if a.size != b.size {
		return a.size > b.size
	}
	la := a.rootID*int64(versions) + int64(a.version)
	lb := b.rootID*int64(versions) + int64(b.version)
	if la != lb {
		return la < lb
	}
	return a.version < b.version
}

// probe reports whether ε detects: some candidate commits with ≥ need
// members (MinSize already enforces the floor) and the best one's
// density meets 1−ε — the identical success predicate SearchContext's
// full probes apply.
func (c *searchCache) probe(eps float64) bool {
	if c.failed {
		return false
	}
	c.evaluate(eps)
	ci := c.bestCommitted()
	if ci < 0 {
		return false
	}
	sc := c.comps[ci]
	c.members = c.members[:0]
	for i, u := range sc.voters {
		if sc.tbits[i].Contains(int(sc.bStar)) {
			c.members = append(c.members, u)
		}
	}
	return len(c.members) >= c.need &&
		c.g.DensityOf(c.members) >= 1-eps-1e-9
}

// materialize builds the winning ε's full Result — labels, finalized
// candidates, sample sizes — through the same decideAndCommit every
// engine runs, so it is bit-identical to what a full probe at that ε
// returns.
func (c *searchCache) materialize(eps float64) *Result {
	res := &Result{
		Labels:       make([]int64, c.g.N()),
		SampleSizes:  append([]int(nil), c.sampleSizes...),
		MaxComponent: c.maxComponent,
	}
	for i := range res.Labels {
		res.Labels[i] = NoLabel
	}
	c.evaluate(eps)
	decideAndCommit(c.g, c.opts, c.comps, res)
	return res
}
