package core

// Frame types for Algorithm DistNearClique. Every frame must fit the
// CONGEST per-message budget B(n); large logical payloads (component ID
// lists, 2^|Si|-bit membership vectors, count vectors) are chunked and the
// simulator pipelines one frame per edge per round.
//
// Bit sizes are computed semantically at construction via the wire sizing
// table: idBits for a node index or protocol ID, cntBits for a counter
// bounded by n, verBits for a boosting version number, k bits for a subset
// index of a size-k component.

// wire holds the field-width table for a given network size.
type wire struct {
	idBits    int
	cntBits   int
	verBits   int
	frameBits int
}

func newWire(n, versions, frameBits int) wire {
	return wire{
		idBits:    bitsFor(n),
		cntBits:   bitsFor(n + 1),
		verBits:   bitsFor(versions),
		frameBits: frameBits,
	}
}

// bitsFor returns the bits needed to address x distinct values (≥1).
func bitsFor(x int) int {
	b := 1
	for 1<<uint(b) < x {
		b++
	}
	return b
}

// chunkHeaderBits is the header of a stream chunk: component root (idBits)
// + subset offset (k bits) + length field (6 bits: chunk payloads ≤ 64).
func (w wire) chunkHeaderBits(k int) int { return w.idBits + k + 6 }

// bitChunkCap returns how many membership bits fit in one frame for a
// size-k component (at most 64; they are carried in a uint64).
func (w wire) bitChunkCap(k int) int {
	c := w.frameBits - w.chunkHeaderBits(k)
	if c < 1 {
		c = 1
	}
	if c > 64 {
		c = 64
	}
	return c
}

// cntChunkCap returns how many counters fit in one frame for a size-k
// component.
func (w wire) cntChunkCap(k int) int {
	c := (w.frameBits - w.chunkHeaderBits(k)) / w.cntBits
	if c < 1 {
		c = 1
	}
	return c
}

// minFrameBits returns the budget needed so every fixed-size frame and at
// least a one-unit chunk fits, for the largest admissible component size.
func (w wire) minFrameBits(maxK int) int {
	need := 2*w.idBits + w.cntBits // bfsOffer / shareStart
	if a := 2*w.idBits + w.verBits + w.cntBits; a > need {
		need = a // announce
	}
	if c := w.chunkHeaderBits(maxK) + w.cntBits; c > need {
		need = c // one-counter chunk
	}
	if c := w.idBits + w.verBits + maxK; c > need {
		need = c // commit carries a subset index
	}
	return need
}

// frame provides the common BitLen implementation; the width is fixed at
// construction.
type frame struct{ w uint16 }

func (f frame) BitLen() int { return int(f.w) }

// msgSampled announces membership in the sample S to all neighbors.
type msgSampled struct{ frame }

func (w wire) sampled() msgSampled { return msgSampled{frame{1}} }

// msgBFSOffer carries a root-election/BFS offer on G[S].
type msgBFSOffer struct {
	frame
	rootID  int64
	rootIdx int32
	dist    int32
}

func (w wire) bfsOffer(rootID int64, rootIdx, dist int32) msgBFSOffer {
	return msgBFSOffer{frame{uint16(2*w.idBits + w.cntBits)}, rootID, rootIdx, dist}
}

// msgTreeClaim tells the BFS parent it has a tree child.
type msgTreeClaim struct{ frame }

func (w wire) treeClaim() msgTreeClaim { return msgTreeClaim{frame{1}} }

// msgCompID streams one component-member index (up in compUp, down in
// compDown).
type msgCompID struct {
	frame
	idx int32
}

func (w wire) compID(idx int32) msgCompID { return msgCompID{frame{uint16(w.idBits)}, idx} }

// msgCompDone terminates a compUp/compDown ID stream.
type msgCompDone struct{ frame }

func (w wire) compDone() msgCompDone { return msgCompDone{frame{1}} }

// msgShareStart opens a Comp(v) share stream: component root and size.
type msgShareStart struct {
	frame
	rootIdx int32
	rootID  int64
	size    int32
}

func (w wire) shareStart(rootIdx int32, rootID int64, size int32) msgShareStart {
	return msgShareStart{frame{uint16(2*w.idBits + w.cntBits)}, rootIdx, rootID, size}
}

// msgShareID streams one member of Comp(v) to a neighbor.
type msgShareID struct {
	frame
	rootIdx int32
	idx     int32
}

func (w wire) shareID(rootIdx, idx int32) msgShareID {
	return msgShareID{frame{uint16(2 * w.idBits)}, rootIdx, idx}
}

// msgLeafClaim registers a non-sampled participant with its chosen parent
// in Si (so convergecasts neither miss nor double-count it).
type msgLeafClaim struct {
	frame
	rootIdx int32
}

func (w wire) leafClaim(rootIdx int32) msgLeafClaim {
	return msgLeafClaim{frame{uint16(w.idBits)}, rootIdx}
}

// msgBitChunk streams consecutive subset-membership bits (K bits in the
// kbits phase, T bits in the tsum phase), starting at subset index offset.
type msgBitChunk struct {
	frame
	rootIdx int32
	offset  int32
	count   uint8
	bits    uint64
}

func (w wire) bitChunk(k int, rootIdx, offset int32, count int, bits uint64) msgBitChunk {
	return msgBitChunk{frame{uint16(w.chunkHeaderBits(k) + count)}, rootIdx, offset, uint8(count), bits}
}

// msgCntChunk streams consecutive counters (partial sums in ksum/tsum
// convergecasts, |K| values in the kdown broadcast).
type msgCntChunk struct {
	frame
	rootIdx int32
	offset  int32
	vals    []int32
}

func (w wire) cntChunk(k int, rootIdx, offset int32, vals []int32) msgCntChunk {
	return msgCntChunk{frame{uint16(w.chunkHeaderBits(k) + len(vals)*w.cntBits)}, rootIdx, offset, vals}
}

// msgAnnounce carries |T_ε(X(Si))| from the root to all of Si ∪ Γ(Si)
// (decision step 2).
type msgAnnounce struct {
	frame
	rootIdx int32
	version int32
	rootID  int64
	size    int32
}

func (w wire) announce(rootIdx, version int32, rootID int64, size int32) msgAnnounce {
	return msgAnnounce{frame{uint16(2*w.idBits + w.verBits + w.cntBits)}, rootIdx, version, rootID, size}
}

// msgVote is a participant's acknowledge (ack=true) or abort (ack=false)
// for one candidate, sent to its parent in that component (decision step 3).
type msgVote struct {
	frame
	rootIdx int32
	version int32
	ack     bool
}

func (w wire) vote(rootIdx, version int32, ack bool) msgVote {
	return msgVote{frame{uint16(w.idBits + w.verBits + 1)}, rootIdx, version, ack}
}

// msgVoteUp aggregates a subtree's votes toward the root: abort=true if any
// abort was seen below.
type msgVoteUp struct {
	frame
	rootIdx int32
	version int32
	abort   bool
}

func (w wire) voteUp(rootIdx, version int32, abort bool) msgVoteUp {
	return msgVoteUp{frame{uint16(w.idBits + w.verBits + 1)}, rootIdx, version, abort}
}

// msgCommit broadcasts the winning subset X(Si) (as its k-bit index) to the
// surviving component (decision step 4).
type msgCommit struct {
	frame
	rootIdx int32
	version int32
	bStar   int32
}

func (w wire) commit(k int, rootIdx, version, bStar int32) msgCommit {
	return msgCommit{frame{uint16(w.idBits + w.verBits + k)}, rootIdx, version, bStar}
}
