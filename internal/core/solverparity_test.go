package core_test

// Solver ⇄ legacy parity: the public Solver must reproduce the legacy
// free functions' transcripts bit-for-bit — labels, candidates, sample
// sizes, and the complete simulator phase metrics — on every engine, and
// SolveBatch must hand back exactly the per-graph results Solve would,
// regardless of batch concurrency. This file lives in the external test
// package so it can exercise the real public surface against internal
// core entry points.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"nearclique"
	"nearclique/internal/core"
	"nearclique/internal/gen"
	"nearclique/internal/graph"
)

// canonResult renders everything observable about a Result, including the
// full per-phase simulator metrics.
func canonResult(res *core.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "labels=%v\nsamples=%v\nmaxcomp=%d\n",
		res.Labels, res.SampleSizes, res.MaxComponent)
	for _, c := range res.Candidates {
		fmt.Fprintf(&b, "cand label=%d ver=%d members=%v x=%v density=%.9f\n",
			c.Label, c.Version, c.Members, c.SubsetX, c.Density)
	}
	m := res.Metrics
	fmt.Fprintf(&b, "rounds=%d frames=%d bits=%d maxframe=%d\n",
		m.Rounds, m.Frames, m.Bits, m.MaxFrameBits)
	for _, ph := range m.Phases {
		fmt.Fprintf(&b, "phase %s: rounds=%d frames=%d bits=%d\n",
			ph.Name, ph.Rounds, ph.Frames, ph.Bits)
	}
	return b.String()
}

func parityInstances() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"planted": gen.PlantedNearClique(400, 120, 0.01, 0.02, 5).Graph,
		"sparse":  gen.SparsePlantedNearClique(400, 120, 0.01, 8, 5).Graph,
		"er":      gen.ErdosRenyi(300, 0.05, 6),
	}
}

func paritySolver(t *testing.T, engine nearclique.Engine) *nearclique.Solver {
	t.Helper()
	s, err := nearclique.New(
		nearclique.WithEngine(engine),
		nearclique.WithEpsilon(0.25),
		nearclique.WithExpectedSample(6),
		nearclique.WithSeed(3),
		nearclique.WithVersions(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var parityLegacyOpts = core.Options{Epsilon: 0.25, ExpectedSample: 6, Seed: 3, Versions: 2}

// TestSolverSolveMatchesLegacyFind pins Solver.Solve against the legacy
// core.Find / core.FindSequential transcripts on the same seed, engine by
// engine.
func TestSolverSolveMatchesLegacyFind(t *testing.T) {
	ctx := context.Background()
	for name, g := range parityInstances() {
		legacySeq, err := core.FindSequential(g, parityLegacyOpts)
		if err != nil {
			t.Fatal(err)
		}
		legacyDist, err := core.Find(g, parityLegacyOpts)
		if err != nil {
			t.Fatal(err)
		}
		cases := []struct {
			engine nearclique.Engine
			want   *core.Result
		}{
			{nearclique.EngineAuto, legacySeq},
			{nearclique.EngineSequential, legacySeq},
			{nearclique.EngineSharded, legacyDist},
			// The frontier engine simulates nothing, so its transcript —
			// including the zero metrics block — must equal the sequential
			// reference bit for bit.
			{nearclique.EngineFrontier, legacySeq},
		}
		for _, tc := range cases {
			res, err := paritySolver(t, tc.engine).Solve(ctx, g)
			if err != nil {
				t.Fatalf("%s engine=%v: %v", name, tc.engine, err)
			}
			if got, want := canonResult(res), canonResult(tc.want); got != want {
				t.Fatalf("%s engine=%v: Solver transcript diverges from legacy:\n--- solver\n%s--- legacy\n%s",
					name, tc.engine, got, want)
			}
		}
	}
}

// TestSolveBatchMatchesSoloSolves pins batch serving against sequential
// solving: a batch of replicated instances at parallelism ≥ 8 must return
// exactly the transcript each solo Solve produces, for both the pooled
// sequential path and the sharded simulator.
func TestSolveBatchMatchesSoloSolves(t *testing.T) {
	ctx := context.Background()
	var graphs []*graph.Graph
	var names []string
	instances := parityInstances()
	keys := make([]string, 0, len(instances))
	for name := range instances {
		keys = append(keys, name)
	}
	sort.Strings(keys) // batch order must not depend on map iteration
	for _, name := range keys {
		g := instances[name]
		graphs = append(graphs, g, g, g) // replicas: exercises scratch reuse
		names = append(names, name, name, name)
	}
	for _, engine := range []nearclique.Engine{
		nearclique.EngineSequential, nearclique.EngineSharded, nearclique.EngineFrontier,
	} {
		s, err := nearclique.New(
			nearclique.WithEngine(engine),
			nearclique.WithEpsilon(0.25),
			nearclique.WithExpectedSample(6),
			nearclique.WithSeed(3),
			nearclique.WithVersions(2),
			nearclique.WithBatchWorkers(8),
		)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]string, len(graphs))
		for i, g := range graphs {
			res, err := s.Solve(ctx, g)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = canonResult(res)
		}
		for rep := 0; rep < 3; rep++ { // repeat: pool contents vary across reps
			results, err := s.SolveBatch(ctx, graphs)
			if err != nil {
				t.Fatal(err)
			}
			for i, res := range results {
				if got := canonResult(res); got != want[i] {
					t.Fatalf("engine=%v rep=%d: batch item %d (%s) diverges from solo Solve:\n--- batch\n%s--- solo\n%s",
						engine, rep, i, names[i], got, want[i])
				}
			}
		}
	}
}

// TestSolveBatchPartialFailure pins the error contract: failing items
// report wrapped sentinel errors while the rest of the batch completes.
func TestSolveBatchPartialFailure(t *testing.T) {
	// With p = 1 every node is sampled: the complete graph yields one
	// giant component (ErrComponentTooLarge), the empty graph only
	// singletons (a clean, candidate-free run).
	bad := gen.Complete(64)
	good := gen.Empty(50)
	s, err := nearclique.New(
		nearclique.WithEngine(nearclique.EngineSequential),
		nearclique.WithSamplingProbability(1),
		nearclique.WithSeed(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.SolveBatch(context.Background(), []*graph.Graph{bad, good})
	if err == nil {
		t.Fatal("oversized component in batch item 0 reported no error")
	}
	if !errors.Is(err, core.ErrComponentTooLarge) {
		t.Fatalf("joined batch error does not wrap ErrComponentTooLarge: %v", err)
	}
	if !strings.Contains(err.Error(), "batch item 0") {
		t.Fatalf("joined error does not name the failing item: %v", err)
	}
	if results[1] == nil {
		t.Fatal("healthy batch item did not complete after a sibling failed")
	}
}
