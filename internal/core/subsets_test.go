package core

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestKMemberCountsMatchesBruteForce: the O(2^k) lowest-bit DP must equal
// the direct popcount-style computation.
func TestKMemberCountsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(12)
		adj := make([]bool, k)
		for i := range adj {
			adj[i] = rng.Intn(2) == 0
		}
		cnt := kMemberCounts(k, func(i int) bool { return adj[i] })
		for b := 0; b < 1<<uint(k); b++ {
			want := 0
			for i := 0; i < k; i++ {
				if b&(1<<uint(i)) != 0 && adj[i] {
					want++
				}
			}
			if int(cnt[b]) != want {
				t.Fatalf("trial %d: cnt[%b] = %d, want %d", trial, b, cnt[b], want)
			}
		}
	}
}

func TestMeetsKThresholds(t *testing.T) {
	// K_{2ε²}(X): |Γ(v) ∩ X| ≥ (1−2ε²)|X|.
	cases := []struct {
		cnt, xSize int
		eps        float64
		want       bool
	}{
		{10, 10, 0.3, true},           // full adjacency always qualifies
		{0, 1, 0.3, false},            // (1−0.18)·1 = 0.82 > 0
		{9, 10, 0.3, true},            // 9 ≥ 8.2
		{8, 10, 0.3, false},           // 8 < 8.2
		{0, 0, 0.3, true},             // vacuous
		{82, 100, 0.3, true},          // exactly at threshold 82
		{81, 100, 0.3, false},         // just below
		{1, 1, 0.45, true},            // large ε still positive threshold
		{0, 1, 0.45, false},           // 1−2·0.2025 = 0.595 > 0
		{59, 100, 0.45, false},        // 59 < 59.5
		{60, 100, 0.45, true},         // 60 ≥ 59.5
		{50, 100, 0.7071, true},       // threshold ≈ 0.0 → everything passes
		{1000000, 1000000, 0.1, true}, // big numbers
	}
	for i, c := range cases {
		if got := meetsK(c.cnt, c.xSize, c.eps); got != c.want {
			t.Errorf("case %d: meetsK(%d, %d, %v) = %v, want %v",
				i, c.cnt, c.xSize, c.eps, got, c.want)
		}
	}
}

func TestMeetsOuterKThresholds(t *testing.T) {
	cases := []struct {
		cnt, ySize int
		eps        float64
		want       bool
	}{
		{75, 100, 0.25, true},
		{74, 100, 0.25, false},
		{0, 0, 0.25, true},
		{3, 4, 0.25, true},
		{2, 4, 0.25, false},
	}
	for i, c := range cases {
		if got := meetsOuterK(c.cnt, c.ySize, c.eps); got != c.want {
			t.Errorf("case %d: meetsOuterK(%d, %d, %v) = %v, want %v",
				i, c.cnt, c.ySize, c.eps, got, c.want)
		}
	}
}

func TestArgmaxSubset(t *testing.T) {
	cases := []struct {
		sizes []int32
		want  int32
	}{
		{[]int32{0, 5, 3, 5}, 1},    // tie → smallest index
		{[]int32{0, 0, 0, 0}, 0},    // no candidate
		{[]int32{0, 1}, 1},          // single subset
		{[]int32{99, 1, 2, 3}, 3},   // index 0 ignored
		{[]int32{0, 0, 0, 0, 7}, 4}, // last wins
	}
	for i, c := range cases {
		if got := argmaxSubset(c.sizes); got != c.want {
			t.Errorf("case %d: argmax(%v) = %d, want %d", i, c.sizes, got, c.want)
		}
	}
}

func TestBetterCandidate(t *testing.T) {
	// Paper rule: larger size first, ties → larger root ID, then version.
	if !betterCandidate(5, 1, 0, 4, 9, 0) {
		t.Fatal("larger size must win")
	}
	if !betterCandidate(5, 9, 0, 5, 1, 0) {
		t.Fatal("tie: larger root ID must win")
	}
	if !betterCandidate(5, 9, 1, 5, 9, 0) {
		t.Fatal("tie: larger version must win")
	}
	if betterCandidate(5, 9, 0, 5, 9, 0) {
		t.Fatal("identical candidates: neither is better")
	}
	// Totality: exactly one of a>b, b>a unless equal.
	f := func(aSize, bSize uint8, aRoot, bRoot uint8, aVer, bVer uint8) bool {
		a := betterCandidate(int32(aSize), int64(aRoot), int32(aVer), int32(bSize), int64(bRoot), int32(bVer))
		b := betterCandidate(int32(bSize), int64(bRoot), int32(bVer), int32(aSize), int64(aRoot), int32(aVer))
		equal := aSize == bSize && aRoot == bRoot && aVer == bVer
		if equal {
			return !a && !b
		}
		return a != b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeSubset(t *testing.T) {
	members := []int32{3, 7, 11, 20}
	cases := []struct {
		b    int32
		want []int
	}{
		{0b0001, []int{3}},
		{0b1010, []int{7, 20}},
		{0b1111, []int{3, 7, 11, 20}},
		{0, nil},
	}
	for i, c := range cases {
		got := decodeSubset(members, c.b)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: %v, want %v", i, got, c.want)
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Fatalf("case %d: %v, want %v", i, got, c.want)
			}
		}
	}
}

func TestSubsetCount(t *testing.T) {
	if subsetCount(0) != 0 || subsetCount(1) != 1 || subsetCount(4) != 15 {
		t.Fatal("subsetCount wrong")
	}
}

func TestPopcount(t *testing.T) {
	for b := 0; b < 256; b++ {
		if popcount(b) != bits.OnesCount(uint(b)) {
			t.Fatalf("popcount(%d) wrong", b)
		}
	}
}

func TestWireSizes(t *testing.T) {
	// Every fixed frame must fit the default budget for a range of n, and
	// chunk capacities must be positive.
	for _, n := range []int{2, 5, 16, 100, 1000, 1 << 16, 1 << 20} {
		budget := 4*bitsFor(n+2) + 16 // congest.DefaultFrameBits(n)
		w := newWire(n, 8, budget)
		maxK := HardMaxComponentSize
		if n < maxK {
			maxK = n
		}
		if w.bitChunkCap(maxK) < 1 {
			t.Fatalf("n=%d: bit chunk capacity %d", n, w.bitChunkCap(maxK))
		}
		if w.cntChunkCap(maxK) < 1 {
			t.Fatalf("n=%d: count chunk capacity %d", n, w.cntChunkCap(maxK))
		}
		if w.bitChunkCap(1) > 64 {
			t.Fatalf("n=%d: bit chunk capacity exceeds carrier word", n)
		}
		frames := []interface{ BitLen() int }{
			w.sampled(),
			w.bfsOffer(int64(n-1), int32(n-1), int32(n-1)),
			w.treeClaim(),
			w.compID(int32(n - 1)),
			w.compDone(),
			w.shareStart(int32(n-1), int64(n-1), int32(n)),
			w.shareID(int32(n-1), int32(n-1)),
			w.leafClaim(int32(n - 1)),
			w.announce(int32(n-1), 7, int64(n-1), int32(n)),
			w.vote(int32(n-1), 7, true),
			w.voteUp(int32(n-1), 7, false),
			w.commit(maxK, int32(n-1), 7, int32(subsetCount(maxK))),
		}
		if need := w.minFrameBits(maxK); need > budget {
			t.Fatalf("n=%d: minFrameBits %d exceeds budget %d", n, need, budget)
		}
		for i, fr := range frames {
			if fr.BitLen() > budget {
				t.Fatalf("n=%d frame %d: %d bits > budget %d", n, i, fr.BitLen(), budget)
			}
			if fr.BitLen() < 1 {
				t.Fatalf("n=%d frame %d: non-positive size", n, i)
			}
		}
	}
}

func TestBitsFor(t *testing.T) {
	cases := []struct{ x, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := bitsFor(c.x); got != c.want {
			t.Errorf("bitsFor(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}
