package core

import (
	"errors"
	"testing"

	"nearclique/internal/gen"
)

func TestSearchMinEpsilonOnPlantedClique(t *testing.T) {
	// A strict planted clique should be detectable at small ε.
	p := gen.PlantedClique(300, 110, 0.02, 5)
	eps, res, err := SearchMinEpsilon(p.Graph, SearchOptions{
		Rho: 0.25, Seed: 3, ExpectedSample: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if eps > 0.2 {
		t.Fatalf("strict clique should be found at small ε, got %v", eps)
	}
	if best := res.Best(); best == nil || len(best.Members) < 75 {
		t.Fatalf("search result too small: %+v", res.Best())
	}
}

func TestSearchMinEpsilonOrdersInstances(t *testing.T) {
	// A looser planted near-clique should need a larger ε than a tight one.
	tight := gen.PlantedNearClique(300, 110, 0.005, 0.02, 7)
	loose := gen.PlantedNearClique(300, 110, 0.12, 0.02, 7)
	so := SearchOptions{Rho: 0.25, Seed: 9, ExpectedSample: 7}
	epsTight, _, err := SearchMinEpsilon(tight.Graph, so)
	if err != nil {
		t.Fatal(err)
	}
	epsLoose, _, err := SearchMinEpsilon(loose.Graph, so)
	if err != nil {
		t.Fatal(err)
	}
	if epsTight > epsLoose {
		t.Fatalf("ε(tight)=%v > ε(loose)=%v; search not ordering instances", epsTight, epsLoose)
	}
}

func TestSearchMinEpsilonNotFound(t *testing.T) {
	// A sparse random graph has no near-clique of 40% of the nodes.
	g := gen.ErdosRenyi(200, 0.03, 2)
	_, _, err := SearchMinEpsilon(g, SearchOptions{Rho: 0.4, Seed: 1})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestSearchMinEpsilonValidation(t *testing.T) {
	g := gen.Complete(10)
	if _, _, err := SearchMinEpsilon(g, SearchOptions{Rho: 0}); err == nil {
		t.Fatal("Rho=0 accepted")
	}
	if _, _, err := SearchMinEpsilon(g, SearchOptions{Rho: 0.5, EpsMin: 0.4, EpsMax: 0.3}); err == nil {
		t.Fatal("inverted bounds accepted")
	}
}

func TestSearchMinEpsilonCompleteGraph(t *testing.T) {
	g := gen.Complete(60)
	eps, res, err := SearchMinEpsilon(g, SearchOptions{Rho: 0.9, Seed: 4, ExpectedSample: 5})
	if err != nil {
		t.Fatal(err)
	}
	if eps > 0.1 {
		t.Fatalf("K60 should need tiny ε, got %v", eps)
	}
	if best := res.Best(); best == nil || best.Density < 0.99 {
		t.Fatalf("K60 search result: %+v", res.Best())
	}
}
