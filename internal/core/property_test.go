package core

import (
	"math/rand"
	"testing"

	"nearclique/internal/bitset"
	"nearclique/internal/gen"
	"nearclique/internal/graph"
)

// randomInstance draws a random graph family member and random (valid)
// options for the fuzz-style invariant checks.
func randomInstance(rng *rand.Rand) (*graph.Graph, Options) {
	n := 20 + rng.Intn(60)
	var g *graph.Graph
	switch rng.Intn(4) {
	case 0:
		g = gen.ErdosRenyi(n, 0.1+rng.Float64()*0.5, rng.Int63())
	case 1:
		size := 5 + rng.Intn(n/2)
		g = gen.PlantedNearClique(n, size, rng.Float64()*0.1, rng.Float64()*0.1, rng.Int63()).Graph
	case 2:
		g = gen.Path(n)
	default:
		g, _ = gen.RandomGeometric(n, 0.1+rng.Float64()*0.3, rng.Int63())
	}
	opts := Options{
		Epsilon:        0.05 + rng.Float64()*0.4,
		ExpectedSample: 2 + rng.Float64()*5,
		Seed:           rng.Int63(),
		Versions:       1 + rng.Intn(3),
	}
	return g, opts
}

// TestPropertyInvariants fuzzes the full pipeline over random graphs and
// options and checks every structural invariant we know:
//
//  1. distributed ≡ sequential
//  2. every candidate equals the oracle T_ε(X) (Eq. 2)
//  3. candidates are pairwise disjoint, sorted, with consistent labels
//  4. Lemma 5.3: each size-t candidate is an (nε/t)-near clique
//  5. SubsetX ⊆ the version's sample of candidates' components
func TestPropertyInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(20260610))
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		g, opts := randomInstance(rng)
		dist, errD := Find(g, opts)
		seq, errS := FindSequential(g, opts)
		if (errD == nil) != (errS == nil) {
			t.Fatalf("trial %d: error mismatch %v vs %v", trial, errD, errS)
		}
		if errD != nil {
			continue // component cap: legitimate abort, equivalently detected
		}
		equalResults(t, dist, seq, "fuzz")

		seen := bitset.New(g.N())
		for _, c := range dist.Candidates {
			// (2) Oracle agreement.
			x := bitset.FromIndices(g.N(), c.SubsetX)
			want := g.T(x, opts.Epsilon).Indices()
			if !equalInts(c.Members, want) {
				t.Fatalf("trial %d: members %v ≠ oracle T %v (X=%v, ε=%v)",
					trial, c.Members, want, c.SubsetX, opts.Epsilon)
			}
			// (3) Disjoint, sorted, labeled.
			for i, m := range c.Members {
				if seen.Contains(m) {
					t.Fatalf("trial %d: node %d in two candidates", trial, m)
				}
				seen.Add(m)
				if dist.Labels[m] != c.Label {
					t.Fatalf("trial %d: label mismatch at node %d", trial, m)
				}
				if i > 0 && c.Members[i-1] >= m {
					t.Fatalf("trial %d: members unsorted: %v", trial, c.Members)
				}
			}
			// (4) Lemma 5.3.
			if tsz := len(c.Members); tsz > 1 {
				bound := float64(g.N()) * opts.Epsilon / float64(tsz)
				if !g.IsNearClique(bitset.FromIndices(g.N(), c.Members), bound) {
					t.Fatalf("trial %d: Lemma 5.3 violated: t=%d density=%v bound=1-%v",
						trial, tsz, c.Density, bound)
				}
			}
			// (5) Non-empty generating subset.
			if len(c.SubsetX) == 0 {
				t.Fatalf("trial %d: empty SubsetX", trial)
			}
		}
		// Labels not covered by candidates must be ⊥.
		for v, l := range dist.Labels {
			if l != NoLabel && !seen.Contains(v) {
				t.Fatalf("trial %d: node %d labeled %d but in no candidate", trial, v, l)
			}
		}
	}
}

// TestPropertySampleMatchesCoins: the sample drawn by the protocol must
// match an independent replay of the two-coin process.
func TestPropertySampleMatchesCoins(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		g, opts := randomInstance(rng)
		res, err := FindSequential(g, opts)
		if err != nil {
			continue
		}
		// E|S| = p·n per version; verify at least the gross scale: the
		// total over versions should rarely exceed 5× the expectation.
		expect := opts.ExpectedSample
		if opts.P > 0 {
			expect = opts.P * float64(g.N())
		}
		for v, size := range res.SampleSizes {
			if float64(size) > 5*expect+10 {
				t.Fatalf("trial %d version %d: |S|=%d vastly exceeds E=%v",
					trial, v, size, expect)
			}
		}
	}
}
