package nearclique_test

// Sentinel-error contract: every failure mode is errors.Is-matchable
// against its exported sentinel, and cancellation surfaces as the
// standard context errors — never a bespoke one.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"nearclique"
)

func TestErrRoundLimitIsWrapped(t *testing.T) {
	g := nearclique.GenPlantedNearClique(200, 70, 0.01, 0.04, 3).Graph
	s, err := nearclique.New(
		nearclique.WithEngine(nearclique.EngineSharded),
		nearclique.WithMaxRounds(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background(), g)
	if !errors.Is(err, nearclique.ErrRoundLimit) {
		t.Fatalf("want wrapped ErrRoundLimit, got %v", err)
	}
	if res == nil || res.Metrics.Rounds == 0 {
		t.Fatal("round-limit abort lost the partial metrics")
	}
}

func TestErrComponentTooLargeIsWrapped(t *testing.T) {
	g := nearclique.Build(64, completeEdges(64))
	for _, engine := range []nearclique.Engine{nearclique.EngineSequential, nearclique.EngineSharded} {
		s, err := nearclique.New(
			nearclique.WithEngine(engine),
			nearclique.WithSamplingProbability(1), // everyone sampled: one giant component
		)
		if err != nil {
			t.Fatal(err)
		}
		_, err = s.Solve(context.Background(), g)
		if !errors.Is(err, nearclique.ErrComponentTooLarge) {
			t.Fatalf("engine %v: want wrapped ErrComponentTooLarge, got %v", engine, err)
		}
	}
}

func TestErrNotFoundFromSearch(t *testing.T) {
	// A near-empty graph holds no large near-clique at any probed ε.
	g := nearclique.Build(60, [][2]int{{0, 1}, {2, 3}})
	s, err := nearclique.New(nearclique.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = s.Search(context.Background(), g, 0.5)
	if !errors.Is(err, nearclique.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestErrInputTooLargeIsWrapped(t *testing.T) {
	_, err := nearclique.ReadGraph(strings.NewReader("n 999999999\n0 1\n"))
	if !errors.Is(err, nearclique.ErrInputTooLarge) {
		t.Fatalf("want wrapped ErrInputTooLarge, got %v", err)
	}
	_, err = nearclique.ReadGraph(strings.NewReader("0 888888888\n"))
	if !errors.Is(err, nearclique.ErrInputTooLarge) {
		t.Fatalf("oversized endpoint: want wrapped ErrInputTooLarge, got %v", err)
	}
	// Malformed — as opposed to oversized — inputs are NOT ErrInputTooLarge.
	_, err = nearclique.ReadGraph(strings.NewReader("zero one\n"))
	if err == nil || errors.Is(err, nearclique.ErrInputTooLarge) {
		t.Fatalf("malformed input misclassified: %v", err)
	}
}

func TestCancellationSurfacesAsContextErrors(t *testing.T) {
	g := nearclique.GenPlantedNearClique(300, 90, 0.01, 0.04, 5).Graph
	for _, engine := range []nearclique.Engine{
		nearclique.EngineSequential, nearclique.EngineSharded,
		nearclique.EngineLegacy, nearclique.EngineAsync,
	} {
		s, err := nearclique.New(nearclique.WithEngine(engine))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := s.Solve(ctx, g); !errors.Is(err, context.Canceled) {
			t.Fatalf("engine %v: want wrapped context.Canceled, got %v", engine, err)
		}
		dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
		if _, err := s.Solve(dctx, g); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("engine %v: want wrapped DeadlineExceeded, got %v", engine, err)
		}
		dcancel()
	}
}

func TestSearchCancellationIsNotErrNotFound(t *testing.T) {
	g := nearclique.GenPlantedNearClique(300, 100, 0.01, 0.04, 6).Graph
	s, err := nearclique.New(nearclique.WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = s.Search(ctx, g, 0.3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
	if errors.Is(err, nearclique.ErrNotFound) {
		t.Fatal("cancellation misreported as ErrNotFound")
	}
}

func TestSolveBatchCancellation(t *testing.T) {
	var graphs []*nearclique.Graph
	for seed := int64(0); seed < 6; seed++ {
		graphs = append(graphs, nearclique.GenPlantedNearClique(200, 60, 0.01, 0.04, seed).Graph)
	}
	s, err := nearclique.New(nearclique.WithBatchWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = s.SolveBatch(ctx, graphs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
}

// TestWrappedSentinelsNeverCompareEqual pins the rationale behind the
// errwrap analyzer (DESIGN.md §12): every sentinel this module returns
// arrives wrapped with context (`%w`), so an == comparison against the
// bare sentinel is always false even when errors.Is matches. If this
// test ever fails, sentinels are being returned unwrapped and the
// analyzer's premise no longer holds.
func TestWrappedSentinelsNeverCompareEqual(t *testing.T) {
	g := nearclique.GenPlantedNearClique(200, 70, 0.01, 0.04, 3).Graph
	s, err := nearclique.New(
		nearclique.WithEngine(nearclique.EngineSharded),
		nearclique.WithMaxRounds(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Solve(context.Background(), g)
	if !errors.Is(err, nearclique.ErrRoundLimit) {
		t.Fatalf("want wrapped ErrRoundLimit, got %v", err)
	}
	//nclint:allow errwrap -- this test demonstrates exactly why == must not be used
	if err == nearclique.ErrRoundLimit {
		t.Fatal("sentinel returned unwrapped: == matched, so the errwrap contract (always wrap with %w) is broken")
	}
	if !strings.Contains(err.Error(), nearclique.ErrRoundLimit.Error()) {
		t.Fatalf("wrapped error hides the sentinel text: %v", err)
	}
}

// completeEdges lists all pairs over n nodes.
func completeEdges(n int) [][2]int {
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	return edges
}
