package nearclique

import (
	"context"
	"fmt"

	"nearclique/internal/shadow"
)

// CountResult is a completed counting query: unbiased estimates of the
// k-clique count and the anchored (k,ε)-near-clique count, each with a
// Hoeffding error bound at the configured confidence. See the shadow
// package for the estimator and DESIGN.md §15 for the determinism
// contract — at a fixed seed the result is bit-identical across
// GOMAXPROCS and sequential vs. batched sampling.
type CountResult = shadow.Result

// MaxCliqueSize is the largest k WithCliqueSize accepts.
const MaxCliqueSize = shadow.MaxK

// maxCountSamples caps WithSamples: past 2^24 draws the Hoeffding
// half-width is already below 3·10⁻⁵·W and more sampling only burns CPU.
const maxCountSamples = 1 << 24

// WithCliqueSize sets the clique size k the Count/Sample path targets
// (default 4; 2 ≤ k ≤ MaxCliqueSize).
func WithCliqueSize(k int) Option {
	return func(c *config) error {
		if k < 2 || k > shadow.MaxK {
			return fmt.Errorf("nearclique: CliqueSize %d outside [2, %d]", k, shadow.MaxK)
		}
		c.cliqueSize = k
		return nil
	}
}

// WithSamples sets the number of estimator draws Count/Sample performs
// (default 4096). More samples tighten the reported error bounds at
// fixed confidence: the half-width shrinks as 1/√samples.
func WithSamples(n int) Option {
	return func(c *config) error {
		if n < 1 || n > maxCountSamples {
			return fmt.Errorf("nearclique: Samples %d outside [1, %d]", n, maxCountSamples)
		}
		c.samples = n
		return nil
	}
}

// WithConfidence sets the coverage 1−δ of Count's error bounds
// (default 0.99, exclusive range (0, 1)).
func WithConfidence(conf float64) Option {
	return func(c *config) error {
		if conf <= 0 || conf >= 1 {
			return fmt.Errorf("nearclique: Confidence %v outside (0, 1)", conf)
		}
		c.confidence = conf
		return nil
	}
}

// countOptions resolves the solver configuration into shadow options.
// The solver's ε (WithEpsilon) doubles as the near-clique slack; seed,
// parallelism, and the flight recorder are shared with the solve path.
func (s *Solver) countOptions() (shadow.Options, error) {
	if s.cfg.engine != EngineAuto && s.cfg.engine != EngineShadow {
		return shadow.Options{}, fmt.Errorf(
			"nearclique: Count/Sample needs engine auto or shadow, not %s", s.cfg.engine)
	}
	k := s.cfg.cliqueSize
	if k == 0 {
		k = 4
	}
	return shadow.Options{
		K:           k,
		Epsilon:     s.cfg.opts.Epsilon,
		Samples:     s.cfg.samples,
		Confidence:  s.cfg.confidence,
		Seed:        s.cfg.opts.Seed,
		Parallelism: s.cfg.opts.Parallelism,
		Flight:      s.cfg.opts.Flight,
	}, nil
}

// Count estimates how many k-cliques and anchored (k,ε)-near-cliques g
// contains, by Turán-shadow sampling (EngineShadow; EngineAuto routes
// here too). An anchored (k,ε)-near-clique is a k-set missing at most
// ⌊ε·C(k,2)⌋ edges that contains at least one (k−1)-clique — the
// counting analogue of the paper's ε-near-clique, anchored so the
// estimator touches only structures reachable from sampled cliques.
//
// The context cancels cooperatively during both shadow construction and
// sampling. Count performs no wall-clock reads; callers that want
// latency measure around it.
func (s *Solver) Count(ctx context.Context, g *Graph) (*CountResult, error) {
	o, err := s.countOptions()
	if err != nil {
		return nil, err
	}
	return shadow.Count(ctx, g, o)
}

// Sample draws WithSamples times from the k-clique distribution and
// returns the draws that landed on actual k-cliques, each sorted
// ascending — uniform over the k-cliques of g, sharing Count's coin
// streams so a Sample after a Count replays the same draws. Needs
// k ≥ 3 (2-cliques are just g's edge list).
func (s *Solver) Sample(ctx context.Context, g *Graph) ([][]int, error) {
	o, err := s.countOptions()
	if err != nil {
		return nil, err
	}
	return shadow.Sample(ctx, g, o)
}
